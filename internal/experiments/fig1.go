package experiments

import (
	"fmt"

	"compso/internal/cluster"
	"compso/internal/modelzoo"
)

// Figure 1: time breakdown of distributed K-FAC training per iteration —
// KFAC Allgather, KFAC Allreduce, KFAC Computations, Forward+Backward, and
// Others — across the four models and {16, 32, 64} compute nodes (four
// GPUs per node).

// Breakdown holds one configuration's per-iteration seconds by category.
type Breakdown struct {
	Model string
	Nodes int
	GPUs  int
	// Seconds per iteration by category, and the total.
	Allgather, Allreduce, KFACCompute, FwdBwd, Others, Total float64
}

// Percent returns the categories as percentages of the total, in the
// paper's stacking order (Allgather, Allreduce, KFACCompute, FwdBwd,
// Others).
func (b Breakdown) Percent() [5]float64 {
	if b.Total == 0 {
		return [5]float64{}
	}
	return [5]float64{
		100 * b.Allgather / b.Total,
		100 * b.Allreduce / b.Total,
		100 * b.KFACCompute / b.Total,
		100 * b.FwdBwd / b.Total,
		100 * b.Others / b.Total,
	}
}

// kfacTimingConstants are the KAISA amortization frequencies used across
// the timing experiments.
const (
	statFreq = 10  // Kronecker factor refresh every 10 iterations
	invFreq  = 100 // eigendecomposition refresh every 100 iterations
	// ownershipImbalance inflates the per-worker K-FAC compute slice for
	// round-robin layer assignment of unequal layers.
	ownershipImbalance = 1.15
	// othersFraction models data loading, batch-norm and optimizer-step
	// time as a fraction of forward+backward.
	othersFraction = 0.30
)

// IterationBreakdown computes the modeled per-iteration breakdown of
// distributed K-FAC for one model on a platform with the given total GPU
// count, with the all-gather payload scaled by compressionRatio (1 = no
// compression) and (de)compression overhead added separately by callers
// that model it.
func IterationBreakdown(p modelzoo.Profile, cfg cluster.Config, gpus int, compressionRatio float64) Breakdown {
	cm := modelzoo.A100Compute()
	fwdBwd := cm.FwdBwdTime(p)

	// Factor all-reduce: the Kronecker factors are symmetric, so only the
	// triangular half is exchanged, and synchronization is amortized over
	// the stat period (local running averages update every iteration).
	allreduce := cfg.AllReduceTime(4*p.CovarianceFloats()/2, gpus) / statFreq

	// K-FAC compute: covariance construction every iteration, plus the
	// owned share of eigendecompositions (amortized) and preconditioning.
	kfacCompute := cm.CovTime(p)
	var eig, precond float64
	for i := range p.Layers {
		eig += cm.EigTime(p, i)
		precond += cm.PrecondTime(p, i)
	}
	kfacCompute += (eig/invFreq + precond) / float64(gpus) * ownershipImbalance

	// Preconditioned-gradient all-gather: per-group collectives over the
	// layer-wise work split (no aggregation in the vanilla breakdown).
	allgather := commTime(p, cfg, gpus, compressionRatio, 1)

	// Others: data loading, norm layers and the optimizer step. The
	// first-order gradient all-reduce overlaps with the backward pass
	// (standard DDP bucketing) and is not a separate share, matching the
	// paper's small "Others" slice.
	others := othersFraction * fwdBwd

	b := Breakdown{
		Model: p.Name, Nodes: gpus / cfg.GPUsPerNode, GPUs: gpus,
		Allgather: allgather, Allreduce: allreduce, KFACCompute: kfacCompute,
		FwdBwd: fwdBwd, Others: others,
	}
	b.Total = allgather + allreduce + kfacCompute + fwdBwd + others
	return b
}

// Figure1 regenerates the paper's Figure 1 on Platform 1.
func Figure1() ([]Breakdown, *Table) {
	cfg := cluster.Platform1()
	var rows []Breakdown
	table := &Table{
		Title:   "Figure 1: time breakdown of distributed KFAC training (% of iteration)",
		Headers: []string{"Model", "Nodes", "GPUs", "Allgather%", "Allreduce%", "KFAC-comp%", "Fwd+Bwd%", "Others%"},
	}
	for _, p := range modelzoo.All() {
		for _, nodes := range []int{16, 32, 64} {
			b := IterationBreakdown(p, cfg, nodes*cfg.GPUsPerNode, 1)
			rows = append(rows, b)
			pct := b.Percent()
			table.Rows = append(table.Rows, []string{
				b.Model, fmt.Sprint(nodes), fmt.Sprint(b.GPUs),
				fmtF(pct[0], 1), fmtF(pct[1], 1), fmtF(pct[2], 1), fmtF(pct[3], 1), fmtF(pct[4], 1),
			})
		}
	}
	return rows, table
}
