// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment returns structured results plus a
// text rendering with the same rows/series the paper reports; the
// cmd/compso-bench tool and the top-level benchmarks drive them.
//
// Absolute numbers come from the simulated platform and synthetic
// workloads (see DESIGN.md §1); the assertions in this package's tests
// pin the paper's qualitative shape — who wins, by roughly what factor,
// and where the crossovers fall.
package experiments

import (
	"fmt"
	"strings"

	"compso/internal/compress"
	"compso/internal/modelzoo"
	"compso/internal/xrand"
)

// Table is a generic experiment result rendering.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// sampleCap bounds the per-layer synthetic gradient sample used for
// compression-ratio measurement; per-layer ratios extrapolate to the full
// layer size.
const sampleCap = 1 << 18 // 256k float32 per layer

// MeasureCR estimates a compressor's overall compression ratio on a model
// profile's K-FAC gradients: each aggregation group of m layers is sampled,
// compressed for real, and the measured group ratio is applied to the
// group's true size.
func MeasureCR(p modelzoo.Profile, comp compress.Compressor, m int, seed int64) (float64, error) {
	if m < 1 {
		m = 1
	}
	rng := xrand.NewSeeded(seed)
	var origBytes, compBytes float64
	for g := 0; g < len(p.Layers); g += m {
		end := min(g+m, len(p.Layers))
		var sample []float32
		groupParams := 0
		for li := g; li < end; li++ {
			sample = append(sample, p.SyntheticGradient(rng, li, sampleCap/(end-g))...)
			groupParams += p.Layers[li].Params()
		}
		blob, err := comp.Compress(sample)
		if err != nil {
			return 0, fmt.Errorf("experiments: %s on %s group %d: %w", comp.Name(), p.Name, g, err)
		}
		ratio := compress.Ratio(len(sample), blob)
		if ratio <= 0 {
			return 0, fmt.Errorf("experiments: zero ratio on %s group %d", p.Name, g)
		}
		groupBytes := float64(4 * groupParams)
		origBytes += groupBytes
		compBytes += groupBytes / ratio
	}
	return origBytes / compBytes, nil
}

// fmtF formats a float at the given precision for table cells.
func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
