package experiments

import (
	"strings"
	"testing"

	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/modelzoo"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "t", Headers: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	s := tb.String()
	if !strings.Contains(s, "== t ==") || !strings.Contains(s, "bb") {
		t.Fatalf("rendering:\n%s", s)
	}
}

func TestMeasureCRCompsoBeatsAccuracyPreservingBaselines(t *testing.T) {
	// The headline: COMPSO's CR (~22x in the paper) must exceed the
	// accuracy-preserving baselines (QSGD-8bit, SZ-4E-3) on every model.
	for _, p := range modelzoo.All() {
		compsoCR, err := MeasureCR(p, compso.NewCompressor(nil, 0, 1), 4, 10)
		if err != nil {
			t.Fatal(err)
		}
		qsgdCR, err := MeasureCR(p, compress.NewQSGD(8, 2), 4, 10)
		if err != nil {
			t.Fatal(err)
		}
		szCR, err := MeasureCR(p, compress.NewSZ(4e-3), 4, 10)
		if err != nil {
			t.Fatal(err)
		}
		if compsoCR <= qsgdCR || compsoCR <= szCR {
			t.Errorf("%s: COMPSO %.1f vs QSGD8 %.1f, SZ4e-3 %.1f", p.Name, compsoCR, qsgdCR, szCR)
		}
		if compsoCR < 12 || compsoCR > 40 {
			t.Errorf("%s: COMPSO CR %.1f outside the paper's ballpark (~20x)", p.Name, compsoCR)
		}
	}
}

func TestFigure1AllgatherDominatesAndGrows(t *testing.T) {
	rows, tb := Figure1()
	if len(rows) != 12 || len(tb.Rows) != 12 {
		t.Fatalf("Figure 1 produced %d rows", len(rows))
	}
	byModel := map[string][]Breakdown{}
	for _, r := range rows {
		byModel[r.Model] = append(byModel[r.Model], r)
	}
	for model, rs := range byModel {
		for _, r := range rs {
			pct := r.Percent()
			// The paper's headline: broadcast/all-gather communication is
			// at least 30% of the iteration.
			if pct[0] < 25 {
				t.Errorf("%s @%d nodes: allgather %.1f%%, want >= 25%%", model, r.Nodes, pct[0])
			}
			if pct[0] < pct[1] {
				t.Errorf("%s @%d nodes: allreduce %.1f%% above allgather %.1f%%", model, r.Nodes, pct[1], pct[0])
			}
		}
		// The share grows with node count (Figure 1's trend).
		if rs[0].Percent()[0] >= rs[2].Percent()[0] {
			t.Errorf("%s: allgather share did not grow: %.1f%% -> %.1f%%",
				model, rs[0].Percent()[0], rs[2].Percent()[0])
		}
	}
}

func TestFigure5RoundingShapes(t *testing.T) {
	results, _ := Figure5()
	if len(results) != 6 {
		t.Fatalf("Figure 5 produced %d results", len(results))
	}
	for _, r := range results {
		switch r.Mode.String() {
		case "SR":
			if r.Triangularity < 0.7 {
				t.Errorf("SR %s triangularity %.2f, want >= 0.7", r.LayerType, r.Triangularity)
			}
		default: // RN and P0.5 must be uniform
			if r.Triangularity > 0.45 {
				t.Errorf("%s %s triangularity %.2f, want uniform", r.Mode, r.LayerType, r.Triangularity)
			}
		}
	}
}

func TestFigure7COMPSOWins(t *testing.T) {
	rows, _, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	// Index speedups by (platform, model, gpus).
	type key struct {
		platform, model string
		gpus            int
	}
	best := map[key]string{}
	val := map[key]float64{}
	for _, r := range rows {
		k := key{r.Platform, r.Model, r.GPUs}
		if r.Speedup > val[k] {
			val[k], best[k] = r.Speedup, r.Method
		}
		if r.Speedup < 1 {
			t.Errorf("%+v: speedup %.2f < 1", r, r.Speedup)
		}
	}
	for k, method := range best {
		if method != "COMPSO" {
			t.Errorf("%v: best method %s, want COMPSO", k, method)
		}
	}
	// Slingshot-10 benefits at least as much as Slingshot-11 (§5.2).
	for _, r := range rows {
		if r.Platform != "Platform 1" || r.Method != "COMPSO" {
			continue
		}
		for _, r2 := range rows {
			if r2.Platform == "Platform 2" && r2.Model == r.Model && r2.Method == "COMPSO" && r2.GPUs == r.GPUs {
				if r.Speedup < r2.Speedup*0.95 {
					t.Errorf("%s @%d: Slingshot-10 speedup %.2f well below Slingshot-11 %.2f",
						r.Model, r.GPUs, r.Speedup, r2.Speedup)
				}
			}
		}
	}
}

func TestTable2ShapeAndSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("encoder sweep is slow")
	}
	rows, tb, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("Table 2 produced %d rows", len(rows))
	}
	byEncoder := map[string]Table2Row{}
	for _, r := range rows {
		if r.Model == "BERT-large" {
			byEncoder[r.Encoder] = r
		}
	}
	// Entropy coders beat dictionary and run-length coders on CR (§5.2).
	for _, entropy := range []string{"ANS", "Deflate", "Zstd"} {
		for _, dict := range []string{"LZ4", "Snappy", "Cascaded", "Bitcomp"} {
			if byEncoder[entropy].CR <= byEncoder[dict].CR {
				t.Errorf("%s CR %.1f <= %s CR %.1f", entropy, byEncoder[entropy].CR, dict, byEncoder[dict].CR)
			}
		}
	}
	// The selected encoder is marked in the rendering.
	if !strings.Contains(tb.String(), "<==") {
		t.Error("no encoder selected in Table 2")
	}
}

func TestFigure8ModelOrdering(t *testing.T) {
	points, _, err := Figure8(false)
	if err != nil {
		t.Fatal(err)
	}
	at := func(name string, mb int) float64 {
		for _, p := range points {
			if p.Pipeline == name && p.SizeMB == mb {
				return p.ModelGBps
			}
		}
		t.Fatalf("missing point %s/%d", name, mb)
		return 0
	}
	// Figure 8 at large sizes: fused CUDA pipelines far above the
	// framework ones; COMPSO near QSGD.
	if at("COMPSO (CUDA)", 128) <= at("QSGD (PyTorch)", 128) {
		t.Error("fused COMPSO not above PyTorch QSGD")
	}
	if at("COMPSO (CUDA)", 128) <= at("CocktailSGD (PyTorch)", 128) {
		t.Error("fused COMPSO not above CocktailSGD")
	}
	if at("QSGD (CUDA)", 128) < at("COMPSO (CUDA)", 128) {
		t.Error("QSGD CUDA should be at least as fast as COMPSO (no filter work)")
	}
	// Throughput grows with size (launch amortization).
	if at("COMPSO (CUDA)", 1) >= at("COMPSO (CUDA)", 64) {
		t.Error("throughput did not grow with size")
	}
}

func TestFigure8Measured(t *testing.T) {
	if testing.Short() {
		t.Skip("measured pass is slow")
	}
	points, _, err := Figure8(true)
	if err != nil {
		t.Fatal(err)
	}
	// The chunk-parallel (fused-style) COMPSO must beat the multi-pass
	// TorchQSGD on real measured throughput at large sizes.
	var compso, torch float64
	for _, p := range points {
		if p.SizeMB == 64 {
			switch p.Pipeline {
			case "COMPSO (CUDA)":
				compso = p.MeasuredMBps
			case "QSGD (PyTorch)":
				torch = p.MeasuredMBps
			}
		}
	}
	if compso == 0 || torch == 0 {
		t.Fatal("missing measured points")
	}
	if compso <= torch {
		t.Errorf("measured chunk-parallel COMPSO %.0f MB/s <= multi-pass QSGD %.0f MB/s", compso, torch)
	}
}

func TestFigure9EndToEnd(t *testing.T) {
	rows, _, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	var maxSpeedup float64
	pByKey := map[string]float64{}
	fByKey := map[string]float64{}
	for _, r := range rows {
		if r.Speedup > maxSpeedup {
			maxSpeedup = r.Speedup
		}
		if r.Speedup < 0.9 {
			t.Errorf("%+v: end-to-end slowdown %.2f", r, r.Speedup)
		}
		key := r.Platform + r.Model + fmt1(r.GPUs)
		switch r.Method {
		case "COMPSO-p":
			pByKey[key] = r.Speedup
		case "COMPSO-f":
			fByKey[key] = r.Speedup
		}
	}
	// Paper: up to 1.9x end-to-end.
	if maxSpeedup < 1.4 || maxSpeedup > 3.2 {
		t.Errorf("max end-to-end speedup %.2f outside the paper's ballpark (~1.9x)", maxSpeedup)
	}
	// COMPSO-p (performance-model aggregation) must win or tie COMPSO-f in
	// the large majority of configurations and never lose materially —
	// Eq. 5 is an estimate, so sub-0.1% ties from stochastic-rounding seeds
	// are expected.
	wins, losses := 0, 0
	for k, pv := range pByKey {
		fv := fByKey[k]
		switch {
		case pv > fv*(1+1e-4):
			wins++
		case pv < fv*(1-1e-3):
			losses++
			t.Errorf("%s: COMPSO-p %.4f materially below COMPSO-f %.4f", k, pv, fv)
		}
	}
	if wins <= losses {
		t.Errorf("COMPSO-p won %d vs lost %d configurations", wins, losses)
	}
}

func fmt1(v int) string { return string(rune('0'+v%10)) + string(rune('0'+(v/10)%10)) }

func TestRunMethodCOMPSOPreservesAccuracy(t *testing.T) {
	// A compact version of Figure 6's claim, small enough for the default
	// test run: KFAC+COMPSO within a few accuracy points of plain KFAC on
	// the ResNet proxy.
	ms := Methods()
	var plain, withCompso Method
	for _, m := range ms {
		switch m.Name {
		case "KFAC (No Comp.)":
			plain = m
		case "KFAC+COMPSO":
			withCompso = m
		}
	}
	base, err := RunMethod("ResNet-50", plain, 40)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := RunMethod("ResNet-50", withCompso, 40)
	if err != nil {
		t.Fatal(err)
	}
	if comp.FinalAcc < base.FinalAcc-0.08 {
		t.Errorf("COMPSO accuracy %.3f vs plain %.3f", comp.FinalAcc, base.FinalAcc)
	}
	if comp.MeanCR <= 1 {
		t.Errorf("COMPSO mean CR %.1f", comp.MeanCR)
	}
}

func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep is slow")
	}
	rows, _, err := Figure3(60)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig3Row{}
	for _, r := range rows {
		byKey[r.Model+"/"+r.Method] = r
	}
	// Tight bounds compress less than loose ones.
	if byKey["ResNet-50/SZ 4E-3"].CR >= byKey["ResNet-50/SZ 1E-1"].CR {
		t.Error("SZ 4E-3 CR not below SZ 1E-1")
	}
	if byKey["ResNet-50/QSGD 8bit"].CR >= byKey["ResNet-50/QSGD 4bit"].CR {
		t.Error("QSGD 8bit CR not below 4bit")
	}
	// The accuracy-preserving settings stay near the uncompressed baseline,
	// while the loose SZ-1E-1 bound costs real accuracy — Figure 3's
	// motivation.
	base := byKey["ResNet-50/KFAC (no comp.)"].Accuracy
	if acc := byKey["ResNet-50/QSGD 8bit"].Accuracy; acc < base-8 {
		t.Errorf("QSGD 8bit accuracy %.1f far below baseline %.1f", acc, base)
	}
	if acc := byKey["ResNet-50/SZ 1E-1"].Accuracy; acc > base-2 {
		t.Errorf("SZ 1E-1 accuracy %.1f did not drop below baseline %.1f", acc, base)
	}
}

func TestFigure6AndTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full method sweep is slow")
	}
	runs, _, err := Figure6(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 18 {
		t.Fatalf("Figure 6 produced %d runs", len(runs))
	}
	// SGD runs 1.5x the iterations of the KFAC rows.
	for _, r := range runs {
		lastIter := r.Iterations[len(r.Iterations)-1]
		if r.Method == "SGD+CocktailSGD" && lastIter <= 30 {
			t.Errorf("%s/%s ran only %d iterations", r.Model, r.Method, lastIter)
		}
	}
	rows, _, err := Table1(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Table 1 produced %d rows", len(rows))
	}
	for _, r := range rows {
		if r.F1 < 0 || r.F1 > 100 || r.EM > r.F1+1e-9 {
			t.Errorf("%s: F1 %.1f EM %.1f malformed", r.Method, r.F1, r.EM)
		}
	}
}

func TestAblationsShape(t *testing.T) {
	rows, _, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]AblationRow{}
	for _, r := range rows {
		by[r.Study+"/"+r.Variant] = r
	}
	// Filter is the main CR lever.
	if by["filter/filter+SR"].CR <= by["filter/SR only"].CR {
		t.Error("filter did not improve CR")
	}
	// Byte planes beat dense bit packing.
	if by["packing/byte planes"].CR <= by["packing/bit packed"].CR {
		t.Error("byte planes did not beat bit packing")
	}
	// All rounding modes respect the bound well enough to keep cosine high;
	// SR is at least as faithful as RN on direction.
	if by["rounding/SR"].Cosine < by["rounding/RN"].Cosine-1e-3 {
		t.Errorf("SR cosine %.4f well below RN %.4f", by["rounding/SR"].Cosine, by["rounding/RN"].Cosine)
	}
	// Aggregation shortens the all-gather (the m=1 note carries more ms).
	if by["aggregation/m=1"].Note <= by["aggregation/m=4"].Note {
		// String compare is fine: same format, larger ms sorts larger.
		t.Errorf("aggregation did not reduce comm: %q vs %q",
			by["aggregation/m=1"].Note, by["aggregation/m=4"].Note)
	}
	// The auto-tuner trades fidelity for ratio monotonically.
	if by["auto-tune/cos>=0.95"].CR <= by["auto-tune/cos>=0.99"].CR {
		t.Error("looser fidelity target did not increase CR")
	}
	if by["factor-comp/eb=1e-3"].CR <= 1.5 {
		t.Error("factor compression achieved no ratio")
	}
}

func TestHeadline(t *testing.T) {
	res, tb, err := Headline()
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCR < 15 || res.MeanCR > 30 {
		t.Errorf("headline CR %.1f outside the paper's ballpark (22.1)", res.MeanCR)
	}
	if res.MaxCommSpeedup < 8 {
		t.Errorf("headline comm speedup %.1f too low", res.MaxCommSpeedup)
	}
	if res.MaxE2ESpeedup < 1.4 || res.MaxE2ESpeedup > 3.5 {
		t.Errorf("headline e2e speedup %.2f outside the paper's ballpark (1.9)", res.MaxE2ESpeedup)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("headline table rows %d", len(tb.Rows))
	}
	if res.String() == "" {
		t.Fatal("empty headline string")
	}
}
