package experiments

import (
	"fmt"
	"math/rand/v2"

	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/kfac"
	"compso/internal/modelzoo"
	"compso/internal/opt"
	"compso/internal/train"
	"compso/internal/xrand"
)

// Figure 6 (and its auxiliary table 6b): convergence of the six methods —
// SGD+CocktailSGD, KFAC without compression, KFAC+cuSZ, KFAC+QSGD,
// KFAC+CocktailSGD, KFAC+COMPSO — on the ResNet-50, Mask R-CNN and
// GPT-neo-125M proxies. SGD runs 1.5x the iterations of KFAC (the paper's
// 60-vs-40-epoch / 1800-vs-1000 / 5000-vs-3000 ratios), so the KFAC rows
// demonstrate second-order iteration savings.

// Method describes one optimizer/compressor combination.
type Method struct {
	Name    string
	UseKFAC bool
	// NewCompressor is nil for uncompressed runs.
	NewCompressor func(rank int) compress.Compressor
	// Adaptive enables COMPSO's iteration-wise controller.
	Adaptive bool
	// IterScale multiplies the base iteration budget (SGD runs longer).
	IterScale float64
}

// Methods returns the Figure 6 method set in the paper's legend order.
func Methods() []Method {
	return []Method{
		{Name: "SGD+CocktailSGD", UseKFAC: false, IterScale: 1.5,
			NewCompressor: func(rank int) compress.Compressor { return compress.NewCocktailSGD(0.2, 8, int64(rank)+500) }},
		{Name: "KFAC (No Comp.)", UseKFAC: true, IterScale: 1},
		{Name: "KFAC+cuSZ", UseKFAC: true, IterScale: 1,
			NewCompressor: func(rank int) compress.Compressor { return compress.NewSZ(4e-3) }},
		{Name: "KFAC+QSGD", UseKFAC: true, IterScale: 1,
			NewCompressor: func(rank int) compress.Compressor { return compress.NewQSGD(8, int64(rank)+600) }},
		{Name: "KFAC+CocktailSGD", UseKFAC: true, IterScale: 1,
			NewCompressor: func(rank int) compress.Compressor { return compress.NewCocktailSGD(0.2, 8, int64(rank)+700) }},
		{Name: "KFAC+COMPSO", UseKFAC: true, IterScale: 1, Adaptive: true,
			NewCompressor: func(rank int) compress.Compressor { return compso.NewCompressor(nil, rank, 800) }},
	}
}

// Fig6Run is one (model, method) convergence record.
type Fig6Run struct {
	Model, Method string
	Iterations    []int
	Losses        []float64
	FinalLoss     float64
	FinalAcc      float64 // -1 for regression tasks
	MeanCR        float64
}

// fig6Task maps a paper model to its proxy builder.
func fig6Task(model string) (func(rng *rand.Rand) *modelzoo.ProxyTask, error) {
	switch model {
	case "ResNet-50":
		return func(rng *rand.Rand) *modelzoo.ProxyTask { return modelzoo.ProxyResNet(rng, 21) }, nil
	case "Mask R-CNN":
		return func(rng *rand.Rand) *modelzoo.ProxyTask { return modelzoo.ProxyMaskRCNN(rng, 22) }, nil
	case "BERT-large":
		return func(rng *rand.Rand) *modelzoo.ProxyTask { return modelzoo.ProxyBERT(rng, 23) }, nil
	case "GPT-neo-125M":
		return func(rng *rand.Rand) *modelzoo.ProxyTask { return modelzoo.ProxyGPT(rng, 24) }, nil
	default:
		return nil, fmt.Errorf("experiments: no proxy for %q", model)
	}
}

// scheduleFor builds the paper's schedule family for the model with the
// proxy task's learning rate for the chosen optimizer family.
func scheduleFor(model string, iters int, baseLR float64) opt.Schedule {
	p, err := modelzoo.ByName(model)
	if err == nil && p.Schedule == "SmoothLR" {
		return &opt.SmoothLR{BaseLR: baseLR, MinLR: baseLR / 10, Warmup: iters / 20, Total: iters}
	}
	return &opt.StepLR{BaseLR: baseLR, Drops: []int{iters * 2 / 3}, Gamma: 0.1}
}

// RunMethod trains one (model, method) pair for the given base iteration
// budget on 4 simulated GPUs.
func RunMethod(model string, m Method, baseIters int) (*Fig6Run, error) {
	builder, err := fig6Task(model)
	if err != nil {
		return nil, err
	}
	iters := int(float64(baseIters) * m.IterScale)
	// Probe the task for its per-optimizer hyper-parameters.
	probe := builder(xrand.NewSeeded(0))
	lr := probe.BaseLR
	kfacCfg := kfac.DefaultConfig()
	if m.UseKFAC {
		lr = probe.KFACLR
		if probe.KFACDamping > 0 {
			kfacCfg.Damping = probe.KFACDamping
		}
	}
	sched := scheduleFor(model, iters, lr)
	cfg := train.Config{
		BuildTask:     builder,
		Workers:       4,
		Platform:      cluster.Platform1(),
		Iters:         iters,
		Seed:          4242,
		Schedule:      sched,
		UseKFAC:       m.UseKFAC,
		KFAC:          kfacCfg,
		StatFreq:      1,
		NewCompressor: m.NewCompressor,
		AggregationM:  4,
	}
	if m.Adaptive {
		cfg.Controller = compso.DefaultController(sched, iters)
	}
	res, err := train.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", model, m.Name, err)
	}
	return &Fig6Run{
		Model: model, Method: m.Name,
		Iterations: res.Iterations, Losses: res.Losses,
		FinalLoss: res.FinalLoss, FinalAcc: res.FinalAcc, MeanCR: res.MeanCR,
	}, nil
}

// fig6BaseIters is the KFAC iteration budget per model.
const fig6BaseIters = 120

// Figure6 regenerates the convergence comparison. baseIters <= 0 uses the
// default budget.
func Figure6(baseIters int) ([]Fig6Run, *Table, error) {
	if baseIters <= 0 {
		baseIters = fig6BaseIters
	}
	models := []string{"ResNet-50", "Mask R-CNN", "GPT-neo-125M"}
	var runs []Fig6Run
	table := &Table{
		Title:   "Figure 6b: final validation metric per method (acc% for ResNet-50, loss otherwise)",
		Headers: []string{"Model", "Method", "Final metric", "Mean CR", "Iterations"},
	}
	for _, model := range models {
		for _, m := range Methods() {
			run, err := RunMethod(model, m, baseIters)
			if err != nil {
				return nil, nil, err
			}
			runs = append(runs, *run)
			metric := fmtF(run.FinalLoss, 3)
			if model == "ResNet-50" {
				metric = fmtF(100*run.FinalAcc, 2) + "%"
			}
			cr := "-"
			if run.MeanCR > 0 {
				cr = fmtF(run.MeanCR, 1)
			}
			table.Rows = append(table.Rows, []string{
				model, m.Name, metric, cr,
				fmt.Sprint(run.Iterations[len(run.Iterations)-1]),
			})
		}
	}
	return runs, table, nil
}
