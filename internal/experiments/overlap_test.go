package experiments

import (
	"strings"
	"testing"
)

// TestOverlapJudgeQuick: the overlap judge must produce finite rows for
// every profile and clear the acceptance bar (the pipelined schedule
// beats the sequential one on at least three profiles), and the
// validation leg must confirm the trainer's bit-identity contract with
// the gauge at zero sequentially and positive overlapped.
func TestOverlapJudgeQuick(t *testing.T) {
	rep, tbl, err := OverlapJudge(true, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("%d rows, want one per modelzoo profile", len(rep.Rows))
	}
	wins := 0
	for _, r := range rep.Rows {
		if r.Win {
			wins++
			if r.OverlapStepSec >= r.SeqStepSec {
				t.Errorf("%s: marked Win but overlap %.4f >= seq %.4f",
					r.Model, r.OverlapStepSec, r.SeqStepSec)
			}
		}
		if r.Buckets <= 0 || r.Buckets > r.Layers {
			t.Errorf("%s: %d buckets for %d layers", r.Model, r.Buckets, r.Layers)
		}
		if r.HiddenFrac <= 0 {
			t.Errorf("%s: hidden fraction %.3f, want > 0", r.Model, r.HiddenFrac)
		}
	}
	if wins < 3 {
		t.Fatalf("pipelined schedule wins on %d profiles, acceptance needs >= 3", wins)
	}
	v := rep.Validation
	if v == nil {
		t.Fatal("missing validation leg")
	}
	if !v.BitIdentical {
		t.Fatalf("overlap on/off diverged: off %.6f vs on %.6f", v.FinalLossOff, v.FinalLossOn)
	}
	if v.GaugeOff != 0 || v.GaugeOn <= 0 {
		t.Fatalf("gauges off=%g on=%g, want exactly 0 and > 0", v.GaugeOff, v.GaugeOn)
	}
	if !strings.Contains(tbl.String(), "BERT") {
		t.Fatalf("table missing profiles:\n%s", tbl)
	}
}
