package experiments

import "testing"

// TestCrashRecoverySweep checks the analytic leg's shape: every profile
// gets the full interval grid, exactly one grid minimum, a sane Young
// optimum, and strictly positive overhead everywhere.
func TestCrashRecoverySweep(t *testing.T) {
	rows, tb := CrashRecoverySweep()
	perModel := map[string][]CrashRow{}
	for _, r := range rows {
		perModel[r.Model] = append(perModel[r.Model], r)
	}
	if len(perModel) == 0 {
		t.Fatal("sweep produced no models")
	}
	for model, rs := range perModel {
		if len(rs) != len(crashSweepIntervals) {
			t.Fatalf("%s: got %d intervals, want %d", model, len(rs), len(crashSweepIntervals))
		}
		best := 0
		for _, r := range rs {
			if r.Best {
				best++
			}
			if r.OverheadSecPer1k <= 0 || r.SaveSecPer1k <= 0 || r.LostSecPerCrash <= 0 {
				t.Fatalf("%s interval %d: non-positive costs: %+v", model, r.IntervalSteps, r)
			}
			if r.YoungSteps < 1 {
				t.Fatalf("%s: Young optimum below one step: %+v", model, r)
			}
			if r.CkptMB <= 0 {
				t.Fatalf("%s: empty checkpoint: %+v", model, r)
			}
		}
		if best != 1 {
			t.Fatalf("%s: %d rows marked best, want exactly 1", model, best)
		}
	}
	if tb == nil || len(tb.Rows) != len(rows) {
		t.Fatal("table rendering missing rows")
	}
}

// TestCrashMeasuredRun exercises the measured leg end to end: a real
// crash-and-restore on the proxy cluster that must reproduce its
// uninterrupted twin bit-exactly.
func TestCrashMeasuredRun(t *testing.T) {
	if testing.Short() {
		t.Skip("measured crash leg trains twice; skipped in -short")
	}
	m, err := CrashMeasuredRun(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Restarts != 1 {
		t.Fatalf("got %d restarts, want 1", m.Restarts)
	}
	if m.Restores < 1 || m.Saves <= 0 {
		t.Fatalf("recovery did not use checkpoints: %+v", m)
	}
	if !m.BitIdentical {
		t.Fatalf("recovered run not bit-identical: %+v", m)
	}
	if m.CkptBytes <= 0 {
		t.Fatalf("no checkpoint bytes recorded: %+v", m)
	}
	if m.RecoverySec <= 0 {
		t.Fatalf("lost work not priced: RecoverySec=%g", m.RecoverySec)
	}
}
