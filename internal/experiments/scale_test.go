package experiments

import (
	"fmt"
	"strings"
	"testing"

	"compso/internal/collective"
)

func TestScaleQuickSweep(t *testing.T) {
	rep, err := RunScale(true, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(ScaleWorlds(true)) {
		t.Fatalf("%d rows, want %d", len(rep.Rows), len(ScaleWorlds(true)))
	}
	for _, row := range rep.Rows {
		wantPolicy := "auto"
		if row.Workers >= 1024 {
			wantPolicy = "hierarchical"
		}
		if row.Policy != wantPolicy {
			t.Errorf("p=%d policy %q, want %q", row.Workers, row.Policy, wantPolicy)
		}
		if row.BytesPerWorker <= 0 || row.BytesPerWorker > 64*1024 {
			t.Errorf("p=%d bytes/worker %g, want (0, 64KB]", row.Workers, row.BytesPerWorker)
		}
	}
	blob, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateScale(blob); err != nil {
		t.Fatalf("round-tripped report invalid: %v", err)
	}
	if !strings.Contains(rep.Render(), "Mega-scale") {
		t.Fatal("Render missing sweep table")
	}
}

func TestValidateScaleRejects(t *testing.T) {
	for name, blob := range map[string]string{
		"not json":     "{",
		"wrong schema": `{"schema":"other/v1"}`,
		"no rows":      `{"schema":"` + ScaleSchema + `","identity_worlds":[3]}`,
	} {
		if err := ValidateScale([]byte(blob)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestMegaCommBreakdownSmallWorld(t *testing.T) {
	rows, err := MegaCommBreakdown([]int{64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	bestPerGroup := map[string]int{}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Errorf("%s/%s/%d: seconds %v", r.Op, r.Algorithm, r.Bytes, r.Seconds)
		}
		if r.Op != collective.OpAllReduce && r.Op != collective.OpAllGather {
			t.Errorf("unexpected op %q", r.Op)
		}
		if r.Best {
			bestPerGroup[fmt.Sprintf("%s/%d", r.Op, r.Bytes)]++
		}
	}
	if len(bestPerGroup) == 0 {
		t.Fatal("no group marked a best algorithm")
	}
}
