package experiments

import (
	"fmt"
	"runtime"
	"time"

	"compso/internal/compress"
	"compso/internal/gpusim"
	"compso/internal/xrand"
)

// Figure 8: compression throughput vs data size for the five pipeline
// implementations — SZ (CUDA), QSGD (CUDA), QSGD (PyTorch), COMPSO (CUDA)
// and CocktailSGD (PyTorch). Two views are produced: the modeled A100
// throughput from the gpusim roofline (the paper's absolute scale) and the
// measured throughput of this repository's Go implementations, whose fused
// (chunk-parallel) vs multi-pass structure mirrors the CUDA vs PyTorch
// split.

// Fig8Point is one (pipeline, size) throughput sample.
type Fig8Point struct {
	Pipeline string
	SizeMB   int
	// ModelGBps is the gpusim A100 roofline estimate.
	ModelGBps float64
	// MeasuredMBps is the real Go implementation's throughput (0 when the
	// measured pass is skipped).
	MeasuredMBps float64
}

// fig8Sizes is the x-axis in MB.
var fig8Sizes = []int{1, 2, 4, 8, 16, 32, 64, 128}

// fig8Impl pairs a gpusim pipeline with the Go implementation measured
// alongside it. Fused pipelines use chunk-parallel execution (thread-block
// style); PyTorch pipelines run the deliberately multi-pass variants.
type fig8Impl struct {
	pipeline gpusim.Pipeline
	mk       func() compress.Compressor
}

func fig8Impls() []fig8Impl {
	chunked := func(newInner func(seed int64) compress.Compressor) compress.Compressor {
		return &compress.Chunked{New: newInner, ChunkSize: 1 << 16, Workers: runtime.GOMAXPROCS(0), Seed: 77}
	}
	return []fig8Impl{
		{gpusim.SZCUDA(), func() compress.Compressor {
			return chunked(func(seed int64) compress.Compressor { return compress.NewSZ(4e-3) })
		}},
		{gpusim.QSGDCUDA(), func() compress.Compressor {
			return chunked(func(seed int64) compress.Compressor { return compress.NewQSGD(8, seed) })
		}},
		{gpusim.QSGDTorch(), func() compress.Compressor { return compress.NewTorchQSGD(8, 3) }},
		{gpusim.COMPSOFused(), func() compress.Compressor {
			return chunked(func(seed int64) compress.Compressor { return compress.NewCOMPSO(seed) })
		}},
		{gpusim.CocktailTorch(), func() compress.Compressor { return compress.NewTorchCocktailSGD(0.2, 8, 4) }},
	}
}

// Figure8 regenerates the throughput study. measure controls whether the
// (slower) real Go measurement pass runs in addition to the model.
func Figure8(measure bool) ([]Fig8Point, *Table, error) {
	device := gpusim.A100()
	var points []Fig8Point
	table := &Table{
		Title:   "Figure 8: compression throughput vs data size",
		Headers: []string{"Pipeline", "Size (MB)", "A100 model (GB/s)", "Go measured (MB/s)"},
	}
	for _, impl := range fig8Impls() {
		var comp compress.Compressor
		if measure {
			comp = impl.mk()
		}
		for _, mb := range fig8Sizes {
			nElem := mb << 20 / 4
			pt := Fig8Point{
				Pipeline:  impl.pipeline.Name,
				SizeMB:    mb,
				ModelGBps: device.Throughput(impl.pipeline, nElem) / 1e9,
			}
			if measure {
				src := make([]float32, nElem)
				xrand.KFACGradient(xrand.NewSeeded(int64(mb)), src, 1.0)
				start := time.Now()
				if _, err := comp.Compress(src); err != nil {
					return nil, nil, fmt.Errorf("fig8 %s: %w", impl.pipeline.Name, err)
				}
				pt.MeasuredMBps = float64(4*nElem) / 1e6 / time.Since(start).Seconds()
			}
			points = append(points, pt)
			measured := "-"
			if measure {
				measured = fmtF(pt.MeasuredMBps, 0)
			}
			table.Rows = append(table.Rows, []string{
				impl.pipeline.Name, fmt.Sprint(mb), fmtF(pt.ModelGBps, 1), measured,
			})
		}
	}
	return points, table, nil
}
