package experiments

import (
	"fmt"
	"math/rand/v2"

	"compso/internal/cluster"
	"compso/internal/compso"
	"compso/internal/kfac"
	"compso/internal/modelzoo"
	"compso/internal/opt"
	"compso/internal/train"
	"compso/internal/xrand"
)

// Table 1: SQuAD v1.1 fine-tuning quality (F1 / exact match) of BERT-large
// under the six methods, on the span-extraction proxy task.

// Table1Row is one method's SQuAD-proxy result.
type Table1Row struct {
	Method string
	F1, EM float64
	MeanCR float64
}

// table1Iters is the fine-tuning budget.
const table1Iters = 250

// Table1 regenerates the SQuAD comparison. iters <= 0 uses the default.
func Table1(iters int) ([]Table1Row, *Table, error) {
	if iters <= 0 {
		iters = table1Iters
	}
	var rows []Table1Row
	table := &Table{
		Title:   "Table 1: SQuAD-proxy fine-tuning quality of BERT-large",
		Headers: []string{"Approach", "F1 Score", "Exact Match", "Mean CR"},
	}
	// The span scorer; the same seed reproduces the task the workers train.
	_, spanData := modelzoo.ProxySQuAD(xrand.NewSeeded(1), 31)
	for _, m := range Methods() {
		mIters := int(float64(iters) * m.IterScale)
		sched := &opt.SmoothLR{BaseLR: 0.02, MinLR: 0.002, Warmup: mIters / 20, Total: mIters}
		cfg := train.Config{
			BuildTask: func(rng *rand.Rand) *modelzoo.ProxyTask {
				task, _ := modelzoo.ProxySQuAD(rng, 31)
				return task
			},
			Workers:       4,
			Platform:      cluster.Platform1(),
			Iters:         mIters,
			Seed:          5151,
			Schedule:      sched,
			UseKFAC:       m.UseKFAC,
			KFAC:          kfac.DefaultConfig(),
			StatFreq:      1,
			NewCompressor: m.NewCompressor,
			AggregationM:  4,
		}
		if m.Adaptive {
			cfg.Controller = compso.DefaultController(sched, mIters)
		}
		res, err := train.Run(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("table1 %s: %w", m.Name, err)
		}

		// Score the trained model on a held-out set with the SQuAD metrics.
		task, _ := modelzoo.ProxySQuAD(xrand.NewSeeded(cfg.Seed), 31)
		ex, ey := task.Data.Sample(xrand.NewSeeded(777), 512)
		out := res.Model.Forward(ex, false)
		pred := make([]int, ex.Rows)
		gold := make([]int, ex.Rows)
		for i := 0; i < ex.Rows; i++ {
			row := out.Data[i*out.Cols : (i+1)*out.Cols]
			best := 0
			for j, v := range row {
				if v > row[best] {
					best = j
				}
			}
			pred[i] = best
			gold[i] = int(ey.Data[i])
		}
		f1, em := spanData.SpanF1EM(pred, gold)
		rows = append(rows, Table1Row{Method: m.Name, F1: f1, EM: em, MeanCR: res.MeanCR})
		cr := "-"
		if res.MeanCR > 0 {
			cr = fmtF(res.MeanCR, 1)
		}
		table.Rows = append(table.Rows, []string{m.Name, fmtF(f1, 2), fmtF(em, 2), cr})
	}
	return rows, table, nil
}
