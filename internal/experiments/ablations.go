package experiments

import (
	"fmt"

	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/modelzoo"
	"compso/internal/quant"
	"compso/internal/xrand"
)

// Ablations isolates COMPSO's design choices on BERT-large-profile K-FAC
// gradients: rounding mode (§4.2), the filter stage (§4.3), byte-plane vs
// dense bit packing (§4.3's packing, revisited), layer aggregation (§4.4),
// factor compression (future work) and the bound auto-tuner (future work).

// AblationRow is one design-choice variant's measurement.
type AblationRow struct {
	Study, Variant string
	CR             float64
	// Cosine is the gradient-direction fidelity after the round trip
	// (1 = perfect).
	Cosine float64
	// Note carries a study-specific extra (e.g. comm time).
	Note string
}

// Ablations runs the design-choice study.
func Ablations() ([]AblationRow, *Table, error) {
	p := modelzoo.BERTLarge()
	sample := profileSample(p, 1<<20, 555)
	var rows []AblationRow
	table := &Table{
		Title:   "Ablations: COMPSO design choices on BERT-large KFAC gradients",
		Headers: []string{"Study", "Variant", "CR (x)", "Cosine", "Note"},
	}
	add := func(r AblationRow) {
		rows = append(rows, r)
		table.Rows = append(table.Rows, []string{
			r.Study, r.Variant, fmtF(r.CR, 2), fmtF(r.Cosine, 4), r.Note,
		})
	}
	roundTrip := func(c *compress.COMPSO) (float64, float64, error) {
		blob, err := c.Compress(sample)
		if err != nil {
			return 0, 0, err
		}
		out, err := c.Decompress(blob)
		if err != nil {
			return 0, 0, err
		}
		return compress.Ratio(len(sample), blob), compso.CosineSimilarity(sample, out), nil
	}

	// Study 1: rounding mode (§4.2). Same bounds, different rounding.
	for _, mode := range []quant.Mode{quant.SR, quant.RN, quant.P05} {
		c := compress.NewCOMPSO(1)
		c.Rounding = mode
		cr, cos, err := roundTrip(c)
		if err != nil {
			return nil, nil, err
		}
		add(AblationRow{Study: "rounding", Variant: mode.String(), CR: cr, Cosine: cos,
			Note: "design: SR (triangular error)"})
	}

	// Study 2: the filter stage.
	for _, on := range []bool{true, false} {
		c := compress.NewCOMPSO(2)
		c.FilterEnabled = on
		variant := "filter+SR"
		if !on {
			variant = "SR only"
		}
		cr, cos, err := roundTrip(c)
		if err != nil {
			return nil, nil, err
		}
		add(AblationRow{Study: "filter", Variant: variant, CR: cr, Cosine: cos,
			Note: "design: filter on (bitmap carries the ratio)"})
	}

	// Study 3: byte planes vs dense bit packing.
	for _, packed := range []bool{false, true} {
		c := compress.NewCOMPSO(3)
		c.BitPacked = packed
		variant := "byte planes"
		if packed {
			variant = "bit packed"
		}
		cr, cos, err := roundTrip(c)
		if err != nil {
			return nil, nil, err
		}
		add(AblationRow{Study: "packing", Variant: variant, CR: cr, Cosine: cos,
			Note: "design: byte planes (entropy-coder friendly)"})
	}

	// Study 4: layer aggregation's communication effect at 64 GPUs.
	cfg := cluster.Platform1()
	c := compress.NewCOMPSO(4)
	cr, err := MeasureCR(p, c, fig7AggM, 556)
	if err != nil {
		return nil, nil, err
	}
	for _, m := range []int{1, 4, 16} {
		t := commTime(p, cfg, 64, cr, m)
		add(AblationRow{Study: "aggregation", Variant: fmt.Sprintf("m=%d", m), CR: cr, Cosine: 1,
			Note: fmt.Sprintf("allgather %.2f ms/iter", 1e3*t)})
	}

	// Study 5: factor compression (future work) — ratio on factor data.
	factorSample := make([]float32, 1<<19)
	xrand.Fill(xrand.NewSeeded(557), factorSample, 0.05)
	fc := compress.NewCOMPSO(5)
	fc.EBFilter, fc.EBQuant = 1e-3, 1e-3
	blob, err := fc.Compress(factorSample)
	if err != nil {
		return nil, nil, err
	}
	add(AblationRow{Study: "factor-comp", Variant: "eb=1e-3",
		CR: compress.Ratio(len(factorSample), blob), Cosine: 1,
		Note: "KFAC Allreduce payload reduction"})

	// Study 6: the bound auto-tuner (future work) at two fidelity targets.
	for _, target := range []float64{0.99, 0.95} {
		res, err := compso.TuneBounds(sample, target, 1e-5, 1e-1, 6)
		if err != nil {
			return nil, nil, err
		}
		add(AblationRow{Study: "auto-tune", Variant: fmt.Sprintf("cos>=%.2f", target),
			CR: res.Ratio, Cosine: res.Cosine,
			Note: fmt.Sprintf("tuned eb=%.2e", res.ErrorBound)})
	}
	return rows, table, nil
}
