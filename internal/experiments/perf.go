package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"compso/internal/compress"
	"compso/internal/encoding"
	"compso/internal/quant"
	"compso/internal/xrand"
)

// This file is the benchmark-trajectory harness behind "compso-bench perf":
// wall-clock and allocation measurements of the fused single-pass kernels
// against the preserved multi-pass reference pipelines (§4.5's kernel-fusion
// claim, Figure 8's pipeline-shape comparison), per back-end codec and per
// pipeline stage, emitted as a machine-readable report that CI validates.

// PerfSchema identifies the bench-perf JSON format.
const PerfSchema = "compso/bench-perf/v1"

// PerfRow is one benchmark's measurement.
type PerfRow struct {
	// Name identifies the benchmark, e.g. "compso/fused/compress".
	Name string `json:"name"`
	// Group is the comparison family: "pipeline", "stage" or "codec".
	Group string `json:"group"`
	// NsPerOp is mean wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is mean heap bytes allocated per operation.
	BytesPerOp float64 `json:"b_per_op"`
	// AllocsPerOp is mean heap allocations per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// MBPerSec is input megabytes processed per second.
	MBPerSec float64 `json:"mb_per_s"`
}

// PerfReport is the full harness output.
type PerfReport struct {
	Schema     string    `json:"schema"`
	Quick      bool      `json:"quick"`
	Elements   int       `json:"elements"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Rows       []PerfRow `json:"rows"`
	// Speedups holds reference-over-fused wall-clock ratios for the paired
	// pipelines, e.g. Speedups["compso/compress"] = reference ns / fused ns.
	Speedups map[string]float64 `json:"speedups"`
}

// perfMeasure times fn on one thread: a warm-up call, round calibration to
// the target duration, then a timed loop bracketed by ReadMemStats for
// per-op allocation accounting.
func perfMeasure(name, group string, inBytes int, target time.Duration, fn func() error) (PerfRow, error) {
	if err := fn(); err != nil { // warm-up: populate arenas, fault early
		return PerfRow{}, fmt.Errorf("%s: %w", name, err)
	}
	t0 := time.Now()
	if err := fn(); err != nil {
		return PerfRow{}, fmt.Errorf("%s: %w", name, err)
	}
	est := time.Since(t0)
	rounds := 3
	if est > 0 {
		if r := int(target / est); r > rounds {
			rounds = r
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := fn(); err != nil {
			return PerfRow{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	ns := float64(elapsed.Nanoseconds()) / float64(rounds)
	row := PerfRow{
		Name:        name,
		Group:       group,
		NsPerOp:     ns,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(rounds),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(rounds),
	}
	if ns > 0 {
		row.MBPerSec = float64(inBytes) / (ns / 1e9) / 1e6
	}
	return row, nil
}

// RunPerf executes the harness. quick shrinks the input and the per-bench
// measurement budget for CI smoke runs; the comparisons stay the same.
func RunPerf(quick bool) (*PerfReport, error) {
	n := 1 << 20
	target := 400 * time.Millisecond
	if quick {
		n = 1 << 17
		target = 50 * time.Millisecond
	}
	src := make([]float32, n)
	xrand.KFACGradient(xrand.NewSeeded(3), src, 1.0)
	inBytes := 4 * n

	rep := &PerfReport{
		Schema:     PerfSchema,
		Quick:      quick,
		Elements:   n,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Speedups:   map[string]float64{},
	}
	add := func(name, group string, bytes int, fn func() error) error {
		row, err := perfMeasure(name, group, bytes, target, fn)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, row)
		return nil
	}

	// Pipeline group: fused single-pass vs preserved multi-pass reference,
	// single-threaded, plus the parallel chunked wrapper.
	fused := compress.NewCOMPSO(3)
	ref := compress.NewCOMPSO(3)
	blob, err := fused.Compress(src)
	if err != nil {
		return nil, err
	}
	pipeline := []struct {
		name string
		fn   func() error
	}{
		{"compso/fused/compress", func() error { _, err := fused.Compress(src); return err }},
		{"compso/reference/compress", func() error { _, err := ref.ReferenceCompress(src); return err }},
		{"compso/fused/decompress", func() error { _, err := fused.Decompress(blob); return err }},
		{"compso/reference/decompress", func() error { _, err := ref.ReferenceDecompress(blob); return err }},
	}
	sz := compress.NewSZ(4e-3)
	pipeline = append(pipeline,
		struct {
			name string
			fn   func() error
		}{"sz/fused/compress", func() error { _, err := sz.Compress(src); return err }},
		struct {
			name string
			fn   func() error
		}{"sz/reference/compress", func() error { _, err := sz.ReferenceCompress(src); return err }},
	)
	qf, qr := compress.NewQSGD(8, 5), compress.NewQSGD(8, 5)
	tq := compress.NewTorchQSGD(8, 5)
	pipeline = append(pipeline,
		struct {
			name string
			fn   func() error
		}{"qsgd/fused/compress", func() error { _, err := qf.Compress(src); return err }},
		struct {
			name string
			fn   func() error
		}{"qsgd/reference/compress", func() error { _, err := qr.ReferenceCompress(src); return err }},
		struct {
			name string
			fn   func() error
		}{"torchqsgd/compress", func() error { _, err := tq.Compress(src); return err }},
	)
	chunked := &compress.Chunked{
		New:       func(seed int64) compress.Compressor { return compress.NewCOMPSO(seed) },
		ChunkSize: 1 << 16,
	}
	cblob, err := chunked.Compress(src)
	if err != nil {
		return nil, err
	}
	pipeline = append(pipeline,
		struct {
			name string
			fn   func() error
		}{"chunked-compso/compress", func() error { _, err := chunked.Compress(src); return err }},
		struct {
			name string
			fn   func() error
		}{"chunked-compso/decompress", func() error { _, err := chunked.Decompress(cblob); return err }},
	)
	// The low-rank family: rank-4 PowerSGD with warm-started queries — the
	// GEMM-shaped pipeline the ring-all-reduce path charges.
	ps := compress.NewPowerSGD(4, 7)
	pblob, err := ps.Compress(src)
	if err != nil {
		return nil, err
	}
	pipeline = append(pipeline,
		struct {
			name string
			fn   func() error
		}{"powersgd/compress", func() error { _, err := ps.Compress(src); return err }},
		struct {
			name string
			fn   func() error
		}{"powersgd/decompress", func() error { _, err := ps.Decompress(pblob); return err }},
	)
	for _, p := range pipeline {
		if err := add(p.name, "pipeline", inBytes, p.fn); err != nil {
			return nil, err
		}
	}

	// Stage group: the fused kernel's constituent stages in isolation.
	binW := quant.BinWidth(4e-3, quant.SR)
	rng := xrand.NewSeeded(9)
	bitmap := make([]byte, (n+7)/8)
	zigs := make([]uint32, n)
	kept, maxZig := quant.FilterQuantizeZig(bitmap, zigs, src, 4e-3, binW, quant.SR, rng)
	plane := make([]byte, kept)
	quant.FillPlane(plane, zigs[:kept], 0)
	packBuf := make([]byte, 0, n)
	encBuf := make([]byte, 0, n)
	decScratch := make([]byte, kept)
	encoded := encoding.ANS{}.Encode(plane)
	stages := []struct {
		name  string
		bytes int
		fn    func() error
	}{
		{"stage/filter-quantize", inBytes, func() error {
			quant.FilterQuantizeZig(bitmap, zigs, src, 4e-3, binW, quant.SR, rng)
			return nil
		}},
		{"stage/pack", 4 * kept, func() error {
			packBuf = quant.PackZigs(packBuf[:0], zigs[:kept], maxZig)
			return nil
		}},
		{"stage/entropy-encode", kept, func() error {
			encBuf = encoding.ANS{}.EncodeAppend(encBuf[:0], plane)
			return nil
		}},
		{"stage/entropy-decode", kept, func() error {
			_, err := encoding.ANS{}.DecodeInto(decScratch, encoded)
			return err
		}},
	}
	for _, s := range stages {
		if err := add(s.name, "stage", s.bytes, s.fn); err != nil {
			return nil, err
		}
	}

	// Codec group: every registered back-end (plus Huffman, SZ's entropy
	// stage) over the low byte plane of the quantized gradient — the symbol
	// distribution the paper's codec comparison runs on.
	codecs := []encoding.Codec{encoding.Huffman{}}
	for _, name := range encoding.Names() {
		c, err := encoding.ByName(name)
		if err != nil {
			return nil, err
		}
		codecs = append(codecs, c)
	}
	for _, c := range codecs {
		c := c
		enc := c.Encode(plane)
		if err := add("codec/"+strings.ToLower(c.Name())+"/encode", "codec", kept, func() error {
			c.Encode(plane)
			return nil
		}); err != nil {
			return nil, err
		}
		if err := add("codec/"+strings.ToLower(c.Name())+"/decode", "codec", kept, func() error {
			_, err := c.Decode(enc)
			return err
		}); err != nil {
			return nil, err
		}
	}

	// Serve group: end-to-end rows through the compso-serve HTTP data plane.
	if err := runServePerf(quick, add, rep); err != nil {
		return nil, err
	}

	// Overlap group: engine-predicted K-FAC step time per modelzoo profile
	// under the sequential and the pipelined schedule (overlap.go).
	if err := runOverlapPerf(quick, rep); err != nil {
		return nil, err
	}

	for _, pair := range [][2]string{
		{"compso/compress", "compso"},
		{"compso/decompress", "compso"},
		{"sz/compress", "sz"},
		{"qsgd/compress", "qsgd"},
	} {
		op := pair[0][strings.IndexByte(pair[0], '/')+1:]
		f := rep.row(pair[1] + "/fused/" + op)
		r := rep.row(pair[1] + "/reference/" + op)
		if f != nil && r != nil && f.NsPerOp > 0 {
			rep.Speedups[pair[0]] = r.NsPerOp / f.NsPerOp
		}
	}
	return rep, nil
}

// MarshalIndent renders the report as the committed, CI-validated JSON file.
func (r *PerfReport) MarshalIndent() ([]byte, error) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// row finds a named row, or nil.
func (r *PerfReport) row(name string) *PerfRow {
	for i := range r.Rows {
		if r.Rows[i].Name == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render formats the report as an aligned text table.
func (r *PerfReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bench-perf (%d elements, GOMAXPROCS=%d, quick=%v)\n", r.Elements, r.GoMaxProcs, r.Quick)
	fmt.Fprintf(&b, "%-32s %14s %14s %12s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op", "MB/s")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-32s %14.0f %14.0f %12.1f %12.1f\n",
			row.Name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp, row.MBPerSec)
	}
	keys := make([]string, 0, len(r.Speedups))
	for k := range r.Speedups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "speedup %-24s %6.2fx (reference / fused)\n", k, r.Speedups[k])
	}
	return b.String()
}

// ValidatePerf checks that blob is a structurally sound bench-perf report:
// right schema, non-empty finite rows, and the headline COMPSO speedup pair
// present. CI's bench-smoke job runs it against the freshly generated file.
func ValidatePerf(blob []byte) error {
	var r PerfReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return fmt.Errorf("bench-perf: %w", err)
	}
	if r.Schema != PerfSchema {
		return fmt.Errorf("bench-perf: schema %q, want %q", r.Schema, PerfSchema)
	}
	if r.Elements <= 0 || r.GoMaxProcs <= 0 {
		return fmt.Errorf("bench-perf: bad environment (elements=%d gomaxprocs=%d)", r.Elements, r.GoMaxProcs)
	}
	if len(r.Rows) == 0 {
		return fmt.Errorf("bench-perf: no rows")
	}
	seen := map[string]bool{}
	for _, row := range r.Rows {
		if row.Name == "" || row.Group == "" {
			return fmt.Errorf("bench-perf: row with empty name/group")
		}
		if seen[row.Name] {
			return fmt.Errorf("bench-perf: duplicate row %q", row.Name)
		}
		seen[row.Name] = true
		for _, v := range []float64{row.NsPerOp, row.BytesPerOp, row.AllocsPerOp, row.MBPerSec} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("bench-perf: row %q has non-finite or negative metric", row.Name)
			}
		}
		if row.NsPerOp == 0 {
			return fmt.Errorf("bench-perf: row %q has zero ns/op", row.Name)
		}
	}
	for _, k := range []string{"compso/compress", "compso/decompress"} {
		v, ok := r.Speedups[k]
		if !ok {
			return fmt.Errorf("bench-perf: missing speedup %q", k)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("bench-perf: speedup %q = %g", k, v)
		}
	}
	return nil
}
