package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"compso/internal/serve"
	"compso/internal/serve/loadgen"
)

// Serve-throughput rows for the bench-perf report: the full HTTP data plane
// (admission, pooled body handling, per-session serialization, metrics)
// driven in-process by the load generator, so regressions in the service
// shell — not just the codec kernels — show up in the committed trajectory.
// Group "serve"; the e2e ns/op is mean wall-clock per completed compress
// round-trip at the configured concurrency, and allocs/op is the whole
// process's per-request heap cost measured across the run.

// runServePerf appends the serve rows to rep using the shared add helper.
func runServePerf(quick bool, add func(name, group string, bytes int, fn func() error) error, rep *PerfReport) error {
	sessions, requests := 256, 10
	if quick {
		sessions, requests = 64, 4
	}
	maxElems := 1 << 14

	srv := serve.New(serve.Config{
		MaxSessions: sessions + 1,
		MaxInflight: sessions + 1, // capacity run: measure throughput, not shedding
	})
	cfg := loadgen.Config{
		Transport:          loadgen.HandlerTransport(srv.Handler()),
		Sessions:           sessions,
		RequestsPerSession: requests,
		Tenants:            8,
		MaxElems:           maxElems,
		Seed:               3,
		Verify:             true,
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	repLG, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return fmt.Errorf("serve perf: %w", err)
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	if repLG.Errors > 0 {
		return fmt.Errorf("serve perf: %d request errors (first: %v)", repLG.Errors, repLG.ErrorSamples)
	}
	if repLG.Requests == 0 {
		return fmt.Errorf("serve perf: no requests completed")
	}

	nReq := float64(repLG.Requests)
	row := PerfRow{
		Name:        "serve/compress-roundtrip",
		Group:       "serve",
		NsPerOp:     float64(wall.Nanoseconds()) / nReq,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / nReq,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / nReq,
		MBPerSec:    repLG.CompressMBPerSec,
	}
	rep.Rows = append(rep.Rows, row)
	rep.Rows = append(rep.Rows, PerfRow{
		Name:    "serve/latency-p99",
		Group:   "serve",
		NsPerOp: repLG.LatencyP99 * 1e9,
		// Throughput carried on the roundtrip row; this row tracks the tail.
		MBPerSec: repLG.CompressMBPerSec,
	})

	// Single-stream row via the shared measurement loop: one session, one
	// request at a time — the per-request overhead of the HTTP shell with no
	// queueing, directly comparable to the library-level pipeline rows.
	one := loadgen.Config{
		Transport:          loadgen.HandlerTransport(srv.Handler()),
		Sessions:           1,
		RequestsPerSession: 1,
		Tenants:            1,
		MaxElems:           maxElems,
		Seed:               5,
		Verify:             true,
	}
	sized, err := loadgen.Run(ctx, one) // deterministic seed: same gradient every run
	if err != nil {
		return fmt.Errorf("serve single-stream: %w", err)
	}
	return add("serve/single-stream", "serve", int(sized.BytesUncompressed), func() error {
		r, err := loadgen.Run(ctx, one)
		if err != nil {
			return err
		}
		if r.Errors > 0 {
			return fmt.Errorf("serve single-stream: %v", r.ErrorSamples)
		}
		return nil
	})
}
