package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"compso/internal/obs"
)

// TestChaosMatrix runs the fault matrix at a tiny budget and checks the
// shape of its report: a clean baseline, fault scenarios that tally
// recovery events, and a schema-valid combined trace.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix trains 7 scenarios; skipped in -short")
	}
	tracePath := filepath.Join(t.TempDir(), "chaos-trace.json")
	rows, tb, err := ChaosMatrix(4, tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d scenarios, want 7", len(rows))
	}
	byName := map[string]ChaosRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	base := byName["baseline"]
	if base.Corrupted+base.Retries+base.Fallbacks+base.Retunes != 0 {
		t.Fatalf("baseline tallied fault events: %+v", base)
	}
	if byName["corruption"].Corrupted == 0 {
		t.Fatalf("corruption scenario saw no corrupted blobs: %+v", byName["corruption"])
	}
	comb := byName["combined"]
	if comb.Corrupted == 0 {
		t.Fatalf("combined scenario saw no corrupted blobs: %+v", comb)
	}
	if comb.CommSec <= base.CommSec {
		t.Fatalf("combined faults did not slow communication: %g vs baseline %g", comb.CommSec, base.CommSec)
	}
	if cs := byName["crash-single"]; cs.WorkerCrashes != 1 || cs.Restores != 1 {
		t.Fatalf("crash-single should lose and restore one worker: %+v", cs)
	}
	if cr := byName["crash-repeat"]; cr.WorkerCrashes != 2 || cr.Restores != 2 {
		t.Fatalf("crash-repeat should crash twice and restore twice: %+v", cr)
	}
	if cs := byName["crash-single"]; cs.CommSec <= base.CommSec {
		t.Fatalf("lost work did not show up in accumulated comm time: %g vs baseline %g", cs.CommSec, base.CommSec)
	}
	if tb == nil || len(tb.Rows) != 7 {
		t.Fatal("table rendering missing rows")
	}
	blob, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(blob); err != nil {
		t.Fatalf("combined trace invalid: %v", err)
	}
}
