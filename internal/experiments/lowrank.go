package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/gpusim"
	"compso/internal/modelzoo"
	"compso/internal/opt"
	"compso/internal/train"
	"compso/internal/xrand"
)

// The low-rank judge: for every modelzoo profile, compare the per-layer
// family plan (PowerSGD rank-k on large 2D layers, COMPSO elsewhere)
// against all-COMPSO on the three axes the family trade-off actually
// turns on — end-to-end wire compression ratio, simulated
// gradient-exchange seconds per step (collective schedule + kernel
// pipeline), and proxy-model convergence under the ring-all-reduce
// path. COMPSO's CR is measured, not assumed: each layer's synthetic
// gradient is compressed for real and the blob size scaled to the full
// layer. The report is what CI's lowrank-smoke job validates.

// lowRankWorkers is the simulated GPU count the judge prices
// collectives for.
const lowRankWorkers = 8

// LowRankRow is one profile's judged comparison.
type LowRankRow struct {
	Model  string `json:"model"`
	Layers int    `json:"layers"`
	// LowRankLayers is how many layers the planner sent to PowerSGD.
	LowRankLayers int `json:"lowrank_layers"`
	// CompsoCR and MixCR are end-to-end wire compression ratios (dense
	// FP32 bytes over wire bytes per step).
	CompsoCR float64 `json:"compso_cr"`
	MixCR    float64 `json:"mix_cr"`
	// CompsoStepSec and MixStepSec are simulated gradient-exchange
	// seconds per step: collective time on the tuned engine plus the
	// compression kernel pipeline on the device model.
	CompsoStepSec float64 `json:"compso_step_s"`
	MixStepSec    float64 `json:"mix_step_s"`
	// Win: the planned mix strictly improves CR at equal-or-better
	// simulated step time.
	Win bool `json:"win"`
}

// LowRankConvergence is the proxy-model convergence leg: the same SGD
// proxy trained with all-COMPSO all-gather vs PowerSGD's alternating
// factor ring all-reduce.
type LowRankConvergence struct {
	Model string `json:"model"`
	Iters int    `json:"iters"`
	// CompsoLoss and PowerSGDLoss are the final training losses.
	CompsoLoss   float64 `json:"compso_final_loss"`
	PowerSGDLoss float64 `json:"powersgd_final_loss"`
	// PowerSGDCR is the ring path's measured mean compression ratio.
	PowerSGDCR float64 `json:"powersgd_mean_cr"`
}

// LowRankReport is the full judge output.
type LowRankReport struct {
	Rank        int                 `json:"rank"`
	Workers     int                 `json:"workers"`
	Rows        []LowRankRow        `json:"rows"`
	Convergence *LowRankConvergence `json:"convergence,omitempty"`
}

// LowRankJudge runs the judge. quick shrinks the per-layer gradient
// samples and the convergence budget for CI smoke runs; the comparisons
// stay the same.
func LowRankJudge(quick bool) (*LowRankReport, *Table, error) {
	const rank = 4
	maxElems := 1 << 18
	iters := 24
	if quick {
		maxElems = 1 << 15
		iters = 8
	}
	eng := cluster.EngineFor(cluster.Platform1(), lowRankWorkers)
	dev := gpusim.A100()
	rng := xrand.NewSeeded(11)
	comp := compress.NewCOMPSO(11)

	rep := &LowRankReport{Rank: rank, Workers: lowRankWorkers}
	for _, prof := range modelzoo.All() {
		plan := compso.PlanFamilies(prof, rank, 0)
		var dense, compsoWire, mixWire float64
		var compsoSec, mixSec float64
		for i, l := range prof.Layers {
			params := l.Params()
			sample := prof.SyntheticGradient(rng, i, maxElems)
			blob, err := comp.Compress(sample)
			if err != nil {
				return nil, nil, fmt.Errorf("lowrank: %s layer %d: %w", prof.Name, i, err)
			}
			blobBytes := float64(len(blob)) * float64(params) / float64(len(sample))
			dense += 4 * float64(params)

			// All-COMPSO path: each rank contributes one blob to the
			// all-gather, then decodes every sender's blob.
			_, agSec := eng.PredictAllGather(int(blobBytes))
			layerSec := agSec +
				dev.Time(gpusim.COMPSOFused(), params) +
				float64(lowRankWorkers)*dev.DecompressTime(gpusim.COMPSOFused(), params)
			compsoWire += blobBytes
			compsoSec += layerSec

			if plan.Choices[i].Family == "powersgd" {
				// Alternating exchange: one rank-k factor per step, on
				// average k·(ADim+GDim)/2 FP32 values, summed by a ring
				// all-reduce and reconstructed once.
				factorBytes := 4 * rank * (l.ADim + l.GDim) / 2
				_, arSec := eng.PredictAllReduce(factorBytes)
				mixWire += float64(factorBytes)
				mixSec += arSec +
					dev.Time(gpusim.PowerSGDGEMM(), params) +
					dev.DecompressTime(gpusim.PowerSGDGEMM(), params)
			} else {
				mixWire += blobBytes
				mixSec += layerSec
			}
		}
		row := LowRankRow{
			Model:         prof.Name,
			Layers:        len(prof.Layers),
			LowRankLayers: plan.LowRankLayers(),
			CompsoCR:      dense / compsoWire,
			MixCR:         dense / mixWire,
			CompsoStepSec: compsoSec,
			MixStepSec:    mixSec,
		}
		row.Win = row.MixCR > row.CompsoCR && row.MixStepSec <= row.CompsoStepSec
		rep.Rows = append(rep.Rows, row)
	}

	conv, err := lowRankConvergence(iters)
	if err != nil {
		return nil, nil, err
	}
	rep.Convergence = conv
	return rep, lowRankTable(rep), nil
}

// lowRankConvergence trains the ResNet proxy with first-order SGD twice:
// all-COMPSO over the all-gather path, then shared-seed PowerSGD over
// the alternating-factor ring all-reduce.
func lowRankConvergence(iters int) (*LowRankConvergence, error) {
	builder := func(rng *rand.Rand) *modelzoo.ProxyTask { return modelzoo.ProxyResNet(rng, 31) }
	probe := builder(xrand.NewSeeded(0))
	base := train.Config{
		BuildTask: builder,
		Workers:   4,
		Platform:  cluster.Platform1(),
		Iters:     iters,
		Seed:      3131,
		Schedule:  &opt.StepLR{BaseLR: probe.BaseLR, Drops: []int{iters * 2 / 3}, Gamma: 0.1},
		StatFreq:  1,
	}

	compsoCfg := base
	compsoCfg.NewCompressor = func(rank int) compress.Compressor {
		return compso.NewCompressor(nil, rank, 31)
	}
	compsoRes, err := train.Run(compsoCfg)
	if err != nil {
		return nil, fmt.Errorf("lowrank: compso convergence: %w", err)
	}

	psCfg := base
	psCfg.NewCompressor = func(rank int) compress.Compressor {
		// One shared seed: the ring path needs bit-identical factor
		// state on every worker.
		return compress.NewPowerSGD(4, 31)
	}
	psRes, err := train.Run(psCfg)
	if err != nil {
		return nil, fmt.Errorf("lowrank: powersgd convergence: %w", err)
	}

	return &LowRankConvergence{
		Model:        "ResNet-50",
		Iters:        iters,
		CompsoLoss:   compsoRes.FinalLoss,
		PowerSGDLoss: psRes.FinalLoss,
		PowerSGDCR:   psRes.MeanCR,
	}, nil
}

// lowRankTable renders the judge report.
func lowRankTable(rep *LowRankReport) *Table {
	t := &Table{
		Title: fmt.Sprintf("Low-rank family judge (rank %d, %d GPUs): planned mix vs all-COMPSO",
			rep.Rank, rep.Workers),
		Headers: []string{"Model", "Layers", "LowRank", "COMPSO CR", "Mix CR", "COMPSO s/step", "Mix s/step", "Win"},
	}
	for _, r := range rep.Rows {
		win := ""
		if r.Win {
			win = "*"
		}
		t.Rows = append(t.Rows, []string{
			r.Model, fmt.Sprint(r.Layers), fmt.Sprint(r.LowRankLayers),
			fmtF(r.CompsoCR, 1), fmtF(r.MixCR, 1),
			fmtF(r.CompsoStepSec*1e3, 3) + " ms", fmtF(r.MixStepSec*1e3, 3) + " ms",
			win,
		})
	}
	return t
}

// Validate enforces the judge's acceptance bar: the planned family mix
// must beat all-COMPSO's compression ratio on at least two modelzoo
// profiles at equal-or-better simulated step time, and the ring-path
// convergence leg must land in the same loss regime as the COMPSO
// baseline.
func (rep *LowRankReport) Validate() error {
	wins := 0
	for _, r := range rep.Rows {
		for _, v := range []float64{r.CompsoCR, r.MixCR, r.CompsoStepSec, r.MixStepSec} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				return fmt.Errorf("lowrank: %s has a non-finite or non-positive metric", r.Model)
			}
		}
		if r.Win {
			wins++
		}
	}
	if wins < 2 {
		return fmt.Errorf("lowrank: planned mix wins on %d profiles, need >= 2", wins)
	}
	c := rep.Convergence
	if c == nil {
		return fmt.Errorf("lowrank: missing convergence leg")
	}
	for _, v := range []float64{c.CompsoLoss, c.PowerSGDLoss} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("lowrank: non-finite convergence loss")
		}
	}
	if c.PowerSGDLoss > 2*c.CompsoLoss {
		return fmt.Errorf("lowrank: powersgd final loss %.4f vs compso %.4f (diverged)",
			c.PowerSGDLoss, c.CompsoLoss)
	}
	if c.PowerSGDCR <= 1 {
		return fmt.Errorf("lowrank: ring path mean CR %.2f, want > 1", c.PowerSGDCR)
	}
	return nil
}
