package experiments

import (
	"fmt"

	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/gpusim"
	"compso/internal/modelzoo"
	"compso/internal/perfmodel"
)

// Figure 9: end-to-end training speedup over uncompressed distributed
// K-FAC for cuSZ, QSGD, CocktailSGD, COMPSO-f (fixed aggregation m=4) and
// COMPSO-p (aggregation chosen by the performance model), across models,
// GPU counts and both platforms. The iteration time combines the Figure 1
// breakdown with compressed all-gathers and gpusim (de)compression
// overhead.

// Fig9Row is one configuration's speedup.
type Fig9Row struct {
	Platform, Model, Method string
	GPUs                    int
	Speedup                 float64
	AggM                    int
}

// fig9Method couples a compressor with its GPU pipeline cost model and
// aggregation policy.
type fig9Method struct {
	name     string
	mk       func() compress.Compressor
	pipeline gpusim.Pipeline
	dynamicM bool // COMPSO-p: choose m via the performance model
}

func fig9Methods() []fig9Method {
	return []fig9Method{
		{"cuSZ", func() compress.Compressor { return compress.NewSZ(4e-3) }, gpusim.SZCUDA(), false},
		{"QSGD", func() compress.Compressor { return compress.NewQSGD(8, 91) }, gpusim.QSGDCUDA(), false},
		{"CocktailSGD", func() compress.Compressor { return compress.NewCocktailSGD(0.2, 8, 92) }, gpusim.CocktailTorch(), false},
		{"COMPSO-f", func() compress.Compressor { return compso.NewCompressor(nil, 0, 93) }, gpusim.COMPSOFused(), false},
		{"COMPSO-p", func() compress.Compressor { return compso.NewCompressor(nil, 0, 94) }, gpusim.COMPSOFused(), true},
	}
}

// iterationTime returns the modeled per-iteration seconds with the given
// compression ratio, aggregation factor and GPU compression pipeline
// (pipeline == nil → no compression).
func iterationTime(p modelzoo.Profile, cfg cluster.Config, gpus int, cr float64, m int, pipeline *gpusim.Pipeline) float64 {
	b := IterationBreakdown(p, cfg, gpus, 1)
	// Replace the uncompressed all-gather with aggregated, compressed
	// groups plus the GPU (de)compression overhead.
	allgather := commTime(p, cfg, gpus, cr, m)
	overhead := 0.0
	if pipeline != nil {
		overhead = compressionOverhead(p, gpus, m, *pipeline)
	}
	return b.FwdBwd + b.Others + b.KFACCompute + b.Allreduce + allgather + overhead
}

// compressionOverhead models the per-iteration GPU cost of compressing the
// worker's owned aggregation groups and decompressing every other worker's
// groups. Kernel-launch overhead is paid per group, which is exactly why
// small layers want aggregation: COMPSO-p's performance model trades group
// size against message efficiency.
func compressionOverhead(p modelzoo.Profile, gpus, m int, pipeline gpusim.Pipeline) float64 {
	device := gpusim.A100()
	var total float64
	for rank := 0; rank < gpus && rank < len(p.Layers); rank++ {
		group := 0
		count := 0
		flush := func() {
			if group == 0 {
				return
			}
			if rank == 0 {
				total += device.Time(pipeline, group)
			} else {
				total += device.DecompressTime(pipeline, group)
			}
			group, count = 0, 0
		}
		for li := rank; li < len(p.Layers); li += gpus {
			group += p.Layers[li].Params()
			count++
			if count == m {
				flush()
			}
		}
		flush()
	}
	return total
}

// Figure9 regenerates the end-to-end comparison.
func Figure9() ([]Fig9Row, *Table, error) {
	var rows []Fig9Row
	table := &Table{
		Title:   "Figure 9: end-to-end speedup over uncompressed distributed KFAC",
		Headers: []string{"Platform", "Model", "Method", "GPUs", "m", "Speedup (x)"},
	}
	for pi, cfg := range []cluster.Config{cluster.Platform1(), cluster.Platform2()} {
		platform := fmt.Sprintf("Platform %d", pi+1)
		lt, err := perfmodel.BuildLookupTable(cfg, []int{8, 16, 32, 64})
		if err != nil {
			return nil, nil, err
		}
		for _, p := range modelzoo.All() {
			for _, method := range fig9Methods() {
				cr, err := MeasureCR(p, method.mk(), fig7AggM, 1100+int64(pi))
				if err != nil {
					return nil, nil, err
				}
				for _, gpus := range []int{8, 16, 32, 64} {
					base := iterationTime(p, cfg, gpus, 1, 1, nil)
					m := fig7AggM
					if method.dynamicM {
						m, err = chooseAggregation(lt, p, cfg, gpus, cr, method.pipeline)
						if err != nil {
							return nil, nil, err
						}
					}
					pipeline := method.pipeline
					comp := iterationTime(p, cfg, gpus, cr, m, &pipeline)
					row := Fig9Row{
						Platform: platform, Model: p.Name, Method: method.name,
						GPUs: gpus, Speedup: base / comp, AggM: m,
					}
					rows = append(rows, row)
					table.Rows = append(table.Rows, []string{
						platform, p.Name, method.name, fmt.Sprint(gpus),
						fmt.Sprint(m), fmtF(row.Speedup, 2),
					})
				}
			}
		}
	}
	return rows, table, nil
}

// chooseAggregation runs the performance model's m selection for COMPSO-p.
func chooseAggregation(lt *perfmodel.LookupTable, p modelzoo.Profile, cfg cluster.Config, gpus int, cr float64, pipeline gpusim.Pipeline) (int, error) {
	// Rank 0's owned layer sizes.
	var ownedBytes []int
	for li := 0; li < len(p.Layers); li += gpus {
		ownedBytes = append(ownedBytes, 4*p.Layers[li].Params())
	}
	device := gpusim.A100()
	nOwned := p.TotalParams() / gpus
	compBps := 4 * float64(nOwned) / device.Time(pipeline, nOwned)
	base := iterationTime(p, cfg, gpus, 1, 1, nil)
	commBase := commTime(p, cfg, gpus, 1, 1)
	prof := perfmodel.OnlineProfile{
		CompressionRatio: cr,
		CompressBps:      compBps,
		DecompressBps:    compBps,
		CommRatio:        commBase / base,
	}
	m, _, err := lt.BestAggregation(ownedBytes, gpus, prof)
	return m, err
}
