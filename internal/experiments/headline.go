package experiments

import (
	"fmt"

	"compso/internal/compso"
	"compso/internal/modelzoo"
)

// Headline reproduces the abstract's summary numbers: "a compression ratio
// of 22.1×, reduces communication time by 14.2×, and improves overall
// performance by 1.9×, all without any drop in model accuracy."

// HeadlineResult holds the abstract-level numbers.
type HeadlineResult struct {
	MeanCR          float64
	MaxCommSpeedup  float64
	MeanCommSpeedup float64
	MaxE2ESpeedup   float64
	MeanE2ESpeedup  float64
}

// Headline computes the summary from the Figure 7 and Figure 9 machinery.
func Headline() (HeadlineResult, *Table, error) {
	var res HeadlineResult

	// Mean COMPSO compression ratio across the four models.
	var crSum float64
	for _, p := range modelzoo.All() {
		cr, err := MeasureCR(p, compso.NewCompressor(nil, 0, 7), fig7AggM, 70)
		if err != nil {
			return res, nil, err
		}
		crSum += cr
	}
	res.MeanCR = crSum / float64(len(modelzoo.All()))

	fig7Rows, _, err := Figure7()
	if err != nil {
		return res, nil, err
	}
	var commSum float64
	var commN int
	for _, r := range fig7Rows {
		if r.Method != "COMPSO" {
			continue
		}
		if r.Speedup > res.MaxCommSpeedup {
			res.MaxCommSpeedup = r.Speedup
		}
		commSum += r.Speedup
		commN++
	}
	res.MeanCommSpeedup = commSum / float64(commN)

	fig9Rows, _, err := Figure9()
	if err != nil {
		return res, nil, err
	}
	var e2eSum float64
	var e2eN int
	for _, r := range fig9Rows {
		if r.Method != "COMPSO-p" {
			continue
		}
		if r.Speedup > res.MaxE2ESpeedup {
			res.MaxE2ESpeedup = r.Speedup
		}
		e2eSum += r.Speedup
		e2eN++
	}
	res.MeanE2ESpeedup = e2eSum / float64(e2eN)

	table := &Table{
		Title:   "Headline: abstract-level summary vs the paper",
		Headers: []string{"Metric", "Paper", "This repo"},
		Rows: [][]string{
			{"COMPSO compression ratio (mean)", "22.1x", fmtF(res.MeanCR, 1) + "x"},
			{"Communication speedup (max)", "14.2x", fmtF(res.MaxCommSpeedup, 1) + "x"},
			{"Communication speedup (mean)", "~9x", fmtF(res.MeanCommSpeedup, 1) + "x"},
			{"End-to-end speedup (max)", "1.9x", fmtF(res.MaxE2ESpeedup, 2) + "x"},
			{"End-to-end speedup (mean)", "~1.4x", fmtF(res.MeanE2ESpeedup, 2) + "x"},
			{"Accuracy drop", "none", "none (Figures 3/6, Table 1)"},
		},
	}
	return res, table, nil
}

// headlineString renders the result for logs.
func (r HeadlineResult) String() string {
	return fmt.Sprintf("CR %.1fx, comm %.1fx max / %.1fx mean, e2e %.2fx max / %.2fx mean",
		r.MeanCR, r.MaxCommSpeedup, r.MeanCommSpeedup, r.MaxE2ESpeedup, r.MeanE2ESpeedup)
}
