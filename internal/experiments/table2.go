package experiments

import (
	"fmt"
	"time"

	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/encoding"
	"compso/internal/modelzoo"
	"compso/internal/perfmodel"
	"compso/internal/xrand"
)

// Table 2: overall compression ratio and (de)compression throughput of the
// COMPSO pipeline with each of the eight lossless back-end encoders, on
// ResNet-50 and BERT-large K-FAC gradient data. Throughput here is the real
// measured throughput of this repository's Go implementations — absolute
// GB/s are CPU-scale, but the ordering (entropy coders beating dictionary
// coders on ratio; ANS balancing ratio and speed) is the paper's finding.

// Table2Row is one encoder's measurement on one model.
type Table2Row struct {
	Model, Encoder string
	CR             float64
	CompressMBps   float64 // input MB/s
	DecompressMBps float64
}

// table2SampleElems is the gradient sample size per measurement.
const table2SampleElems = 1 << 21 // 8 MB of FP32

// MeasureEncoder benchmarks the COMPSO pipeline with one back-end codec on
// a model's gradient sample, returning CR and throughputs.
func MeasureEncoder(p modelzoo.Profile, codec encoding.Codec, seed int64) (Table2Row, error) {
	// Build a representative sample across layers.
	comp := compress.NewCOMPSO(seed)
	comp.Codec = codec
	sample := profileSample(p, table2SampleElems, seed)

	start := time.Now()
	blob, err := comp.Compress(sample)
	if err != nil {
		return Table2Row{}, fmt.Errorf("experiments: %s/%s: %w", p.Name, codec.Name(), err)
	}
	compSec := time.Since(start).Seconds()

	start = time.Now()
	out, err := comp.Decompress(blob)
	if err != nil {
		return Table2Row{}, fmt.Errorf("experiments: %s/%s decompress: %w", p.Name, codec.Name(), err)
	}
	decompSec := time.Since(start).Seconds()
	if len(out) != len(sample) {
		return Table2Row{}, fmt.Errorf("experiments: %s/%s: round-trip length %d != %d", p.Name, codec.Name(), len(out), len(sample))
	}
	inputMB := float64(4*len(sample)) / 1e6
	return Table2Row{
		Model: p.Name, Encoder: codec.Name(),
		CR:             compress.Ratio(len(sample), blob),
		CompressMBps:   inputMB / compSec,
		DecompressMBps: inputMB / decompSec,
	}, nil
}

// profileSample draws ~n gradient elements spread across the profile's
// layers.
func profileSample(p modelzoo.Profile, n int, seed int64) []float32 {
	rng := xrand.NewSeeded(seed)
	perLayer := n / len(p.Layers)
	if perLayer < 1024 {
		perLayer = 1024
	}
	var sample []float32
	for li := range p.Layers {
		sample = append(sample, p.SyntheticGradient(rng, li, perLayer)...)
		if len(sample) >= n {
			break
		}
	}
	return sample
}

// Table2 regenerates the encoder comparison and reports the encoder the
// performance model selects for each model.
func Table2() ([]Table2Row, *Table, error) {
	var rows []Table2Row
	table := &Table{
		Title:   "Table 2: COMPSO pipeline CR and throughput per lossless encoder (Go implementations)",
		Headers: []string{"Model", "Encoder", "CR (x)", "C-MB/s", "D-MB/s", "Selected"},
	}
	for _, modelName := range []string{"ResNet-50", "BERT-large"} {
		p, err := modelzoo.ByName(modelName)
		if err != nil {
			return nil, nil, err
		}
		var ms []perfmodel.EncoderMeasurement
		var modelRows []Table2Row
		for _, codec := range encoding.All() {
			row, err := MeasureEncoder(p, codec, 2024)
			if err != nil {
				return nil, nil, err
			}
			modelRows = append(modelRows, row)
			ms = append(ms, perfmodel.EncoderMeasurement{
				Name:             row.Encoder,
				CompressionRatio: row.CR,
				CompressBps:      row.CompressMBps * 1e6,
				DecompressBps:    row.DecompressMBps * 1e6,
			})
		}
		selected, err := selectEncoderFor(p, ms)
		if err != nil {
			return nil, nil, err
		}
		for _, row := range modelRows {
			mark := ""
			if row.Encoder == selected {
				mark = "<=="
			}
			table.Rows = append(table.Rows, []string{
				row.Model, row.Encoder, fmtF(row.CR, 2),
				fmtF(row.CompressMBps, 1), fmtF(row.DecompressMBps, 1), mark,
			})
		}
		rows = append(rows, modelRows...)
	}
	return rows, table, nil
}

// ansTargetBps anchors the throughput scale to the paper's measured ANS
// compression throughput on A100 (43.52 GB/s, Table 2).
const ansTargetBps = 43.52e9

// selectEncoderFor runs the §4.4 encoder selection on the measured set.
// The Go throughputs preserve the encoders' relative speeds but are
// CPU-scale; the selection decision the paper makes is between GPU-scale
// encoders, so all measurements are rescaled by one common factor anchoring
// ANS to its A100 throughput before the model runs.
func selectEncoderFor(p modelzoo.Profile, ms []perfmodel.EncoderMeasurement) (string, error) {
	var ansBps float64
	for _, m := range ms {
		if m.Name == "ANS" {
			ansBps = m.CompressBps
		}
	}
	if ansBps > 0 {
		factor := ansTargetBps / ansBps
		scaled := make([]perfmodel.EncoderMeasurement, len(ms))
		for i, m := range ms {
			m.CompressBps *= factor
			m.DecompressBps *= factor
			scaled[i] = m
		}
		ms = scaled
	}
	lt, err := perfmodel.BuildLookupTable(cluster.Platform1(), []int{8, 16, 32, 64})
	if err != nil {
		return "", err
	}
	layerBytes := make([]int, 0, len(p.Layers))
	for li := 0; li < len(p.Layers); li += 64 { // rank 0's owned layers at 64 GPUs
		layerBytes = append(layerBytes, 4*p.Layers[li].Params())
	}
	best, err := lt.SelectEncoder(layerBytes, 64, fig7AggM, 0.35, ms)
	if err != nil {
		return "", err
	}
	return best.Name, nil
}
