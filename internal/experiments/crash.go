package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/fault"
	"compso/internal/kfac"
	"compso/internal/modelzoo"
	"compso/internal/obs"
	"compso/internal/opt"
	"compso/internal/train"
)

// Recovery-time judge: how should the checkpoint interval be chosen? Two
// legs answer it. The analytic leg sweeps the interval over the four
// evaluation profiles, pricing each choice as save overhead (checkpoint
// bytes over storage bandwidth, paid every interval) against expected lost
// work (half an interval of re-computed steps plus a restore, paid per
// crash) — the classic first-order checkpoint model, whose optimum is
// Young's approximation √(2·c/(λ·t)). The measured leg runs a real
// crash-and-restore on the proxy cluster and reports the observed recovery
// cost next to the bit-identity verdict, so the analytic pricing stays
// anchored to the simulator's actual behavior.

// crashModel fixes the analytic leg's environment: a per-step crash hazard
// typical of multi-hour jobs on preemptible capacity, parallel-filesystem
// storage bandwidth, and the survivors' detection timeout.
const (
	// crashHazard is the per-step crash probability λ.
	crashHazard = 1e-3
	// storageBytesPerSec prices checkpoint writes and restores.
	storageBytesPerSec = 2e9
	// detectSeconds is the peer-loss detection timeout survivors pay.
	detectSeconds = 0.25
	// crashSweepGPUs sizes the analytic cluster.
	crashSweepGPUs = 64
)

// CrashRow is one (model, checkpoint interval) cell of the analytic sweep.
type CrashRow struct {
	Model         string
	IntervalSteps int
	// CkptMB is the checkpoint size (model parameters plus K-FAC factor
	// state, FP64).
	CkptMB float64
	// SaveSecPer1k is the save overhead per 1000 steps.
	SaveSecPer1k float64
	// LostSecPerCrash is the expected lost work a single crash costs at
	// this cadence: detection, restore, and half an interval of replay.
	LostSecPerCrash float64
	// OverheadSecPer1k is the total expected overhead per 1000 steps at
	// the model's crash hazard.
	OverheadSecPer1k float64
	// Best marks the interval minimizing OverheadSecPer1k for the model;
	// YoungSteps is the closed-form optimum √(2c/(λt)) for reference.
	Best       bool
	YoungSteps int
}

// CrashMeasured is the measured proxy leg: one real crash-and-restore run
// on the simulated cluster against its uninterrupted twin.
type CrashMeasured struct {
	Restarts  int
	Saves     int64
	Restores  int64
	CkptBytes int64
	// BitIdentical reports whether the recovered run reproduced the
	// uninterrupted run's final loss exactly.
	BitIdentical bool
	// RecoverySec is the extra simulated per-worker collective time the
	// crash cost (lost work priced by the accumulating AlgSeconds).
	RecoverySec float64
}

// crashCkptBytes estimates a profile's checkpoint size: FP64 model
// parameters plus the K-FAC covariance state (the owner-local
// decomposition caches are the same order as the factors).
func crashCkptBytes(p modelzoo.Profile) float64 {
	return 8 * float64(p.TotalParams()+p.CovarianceFloats())
}

// crashSweepIntervals is the analytic leg's cadence grid.
var crashSweepIntervals = []int{1, 2, 5, 10, 25, 50, 100, 250}

// CrashRecoverySweep prices the checkpoint-interval choice for each of the
// four evaluation profiles on Platform 1. For interval τ, step time t and
// save cost c the expected overhead per N steps is
//
//	(N/τ)·c + N·λ·(detect + restore + τ·t/2)
//
// and the returned rows mark both the grid minimum and Young's closed-form
// optimum.
func CrashRecoverySweep() ([]CrashRow, *Table) {
	cfg := cluster.Platform1()
	var rows []CrashRow
	for _, p := range modelzoo.All() {
		stepSec := IterationBreakdown(p, cfg, crashSweepGPUs, 1).Total
		bytes := crashCkptBytes(p)
		saveSec := bytes / storageBytesPerSec
		restoreSec := detectSeconds + bytes/storageBytesPerSec
		young := int(math.Max(1, math.Round(math.Sqrt(2*saveSec/(crashHazard*stepSec)))))
		const n = 1000.0
		best, bestOverhead := -1, math.Inf(1)
		start := len(rows)
		for _, tau := range crashSweepIntervals {
			lost := restoreSec + float64(tau)*stepSec/2
			overhead := n/float64(tau)*saveSec + n*crashHazard*lost
			if overhead < bestOverhead {
				best, bestOverhead = len(rows), overhead
			}
			rows = append(rows, CrashRow{
				Model: p.Name, IntervalSteps: tau,
				CkptMB:           bytes / 1e6,
				SaveSecPer1k:     n / float64(tau) * saveSec,
				LostSecPerCrash:  lost,
				OverheadSecPer1k: overhead,
				YoungSteps:       young,
			})
		}
		if best >= start {
			rows[best].Best = true
		}
	}

	tb := &Table{
		Title: fmt.Sprintf("Checkpoint-interval sweep (%d GPUs, λ=%g/step, %.0f GB/s storage)",
			crashSweepGPUs, crashHazard, storageBytesPerSec/1e9),
		Headers: []string{"model", "interval", "ckpt MB", "save s/1k", "lost s/crash", "overhead s/1k", "best", "young τ*"},
	}
	for _, r := range rows {
		mark := ""
		if r.Best {
			mark = "*"
		}
		tb.Rows = append(tb.Rows, []string{
			r.Model,
			fmt.Sprintf("%d", r.IntervalSteps),
			fmt.Sprintf("%.1f", r.CkptMB),
			fmt.Sprintf("%.2f", r.SaveSecPer1k),
			fmt.Sprintf("%.2f", r.LostSecPerCrash),
			fmt.Sprintf("%.2f", r.OverheadSecPer1k),
			mark,
			fmt.Sprintf("%d", r.YoungSteps),
		})
	}
	return rows, tb
}

// CrashMeasuredRun is the measured leg: a 4-GPU K-FAC + COMPSO proxy run
// that loses a worker mid-step and recovers from its last checkpoint, next
// to an uninterrupted twin with the same cadence. It verifies the recovery
// reproduced the twin's final loss bit-exactly and prices the crash as the
// extra accumulated per-worker collective seconds.
//
// iters <= 0 selects a small default budget suitable for CI.
func CrashMeasuredRun(iters int) (CrashMeasured, error) {
	if iters <= 0 {
		iters = 12
	}
	const seed = int64(42)
	build := func(rec *obs.Recorder, plan *fault.Plan) train.Config {
		return train.Config{
			BuildTask: func(rng *rand.Rand) *modelzoo.ProxyTask {
				return modelzoo.ProxyResNet(rng, seed)
			},
			Workers:  4,
			Platform: cluster.Platform1(),
			Iters:    iters,
			Seed:     seed,
			Schedule: &opt.StepLR{BaseLR: 0.03, Drops: []int{iters * 2 / 3}, Gamma: 0.1},
			UseKFAC:  true,
			KFAC:     kfac.DefaultConfig(),
			NewCompressor: func(rank int) compress.Compressor {
				return compso.NewCompressor(nil, rank, seed)
			},
			AggregationM: 2,
			EvalEvery:    max(1, iters/3),
			Obs:          rec,
			Fault:        plan,
			Checkpoint:   train.CheckpointConfig{Interval: max(1, iters/4)},
		}
	}
	crashRec := obs.NewRecorder()
	crashed, err := train.Run(build(crashRec, &fault.Plan{
		Seed: 2025,
		Crashes: []fault.WorkerCrash{{
			Rank: 1, Point: fault.CrashMidStep, Step: iters/2 + 1, DetectSec: detectSeconds,
		}},
	}))
	if err != nil {
		return CrashMeasured{}, fmt.Errorf("crash leg: %w", err)
	}
	plain, err := train.Run(build(obs.NewRecorder(), nil))
	if err != nil {
		return CrashMeasured{}, fmt.Errorf("uninterrupted leg: %w", err)
	}
	m := CrashMeasured{
		Restarts:     crashed.Restarts,
		Saves:        int64(crashRec.Counter("ckpt/saves").Value()),
		Restores:     int64(crashRec.Counter("ckpt/restores").Value()),
		CkptBytes:    int64(crashRec.Counter("ckpt/bytes").Value()),
		BitIdentical: crashed.FinalLoss == plain.FinalLoss && crashed.MeanCR == plain.MeanCR,
		RecoverySec:  sumValues(crashed.AlgSeconds) - sumValues(plain.AlgSeconds),
	}
	if m.Restarts == 0 || m.Restores == 0 {
		return m, fmt.Errorf("crash leg recovered %d times with %d restores; expected a real crash", m.Restarts, m.Restores)
	}
	if !m.BitIdentical {
		return m, fmt.Errorf("recovered run diverged: final loss %v vs %v", crashed.FinalLoss, plain.FinalLoss)
	}
	return m, nil
}
