package experiments

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"os"
	"sort"

	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/kfac"
	"compso/internal/modelzoo"
	"compso/internal/obs"
	"compso/internal/opt"
	"compso/internal/train"
)

// CaptureObserved runs one fully instrumented distributed K-FAC + COMPSO
// training job (Platform 1, 8 simulated GPUs, per-transfer spans enabled)
// and writes its Chrome trace and flat metrics dump to the given paths
// (either may be empty to skip that artifact).
//
// Before writing anything it self-checks the capture:
//
//   - the trace must carry at least the step, phase, collective, compress
//     and precondition span categories;
//   - the per-algorithm collective span sums must reconcile with the
//     run's AlgSeconds attribution within 1%;
//   - the emitted trace must pass the Chrome trace-event schema
//     validation (required keys, monotonic timestamps).
//
// iters <= 0 selects a small default budget suitable for CI.
func CaptureObserved(tracePath, metricsPath string, iters int) error {
	if iters <= 0 {
		iters = 12
	}
	const workers = 8
	rec := obs.NewRecorder(obs.WithTransferSpans(true))
	seed := int64(42)
	schedule := &opt.StepLR{BaseLR: 0.03, Drops: []int{iters * 2 / 3}, Gamma: 0.1}
	cfg := train.Config{
		BuildTask: func(rng *rand.Rand) *modelzoo.ProxyTask {
			return modelzoo.ProxyResNet(rng, seed)
		},
		Workers:  workers,
		Platform: cluster.Platform1(),
		Iters:    iters,
		Seed:     seed,
		Schedule: schedule,
		UseKFAC:  true,
		KFAC:     kfac.DefaultConfig(),
		NewCompressor: func(rank int) compress.Compressor {
			return compso.NewCompressor(nil, rank, seed)
		},
		Controller:   compso.DefaultController(schedule, iters),
		AggregationM: 4,
		Obs:          rec,
	}
	res, err := train.Run(cfg)
	if err != nil {
		return fmt.Errorf("observed run: %w", err)
	}
	snap := res.Metrics
	if snap == nil {
		return fmt.Errorf("observed run returned no metrics snapshot")
	}

	// Category check: the trace must show the full step → phase →
	// collective/compress/precondition hierarchy.
	have := map[obs.Category]bool{}
	for _, cat := range snap.Categories() {
		have[cat] = true
	}
	for _, want := range []obs.Category{
		obs.CatStep, obs.CatPhase, obs.CatCollective, obs.CatCompress, obs.CatPrecondition,
	} {
		if !have[want] {
			return fmt.Errorf("observed trace is missing span category %q (have %v)", want, snap.Categories())
		}
	}

	// Reconciliation: collective span sums (all workers) vs the cluster's
	// own per-algorithm attribution (mean per worker, so scale down).
	perWorker := map[string]float64{}
	for k, v := range snap.AlgSeconds() {
		perWorker[k] = v / float64(workers)
	}
	if err := obs.ReconcileAlgSeconds(perWorker, res.AlgSeconds, 0.01); err != nil {
		return fmt.Errorf("span/AlgSeconds reconciliation failed: %w", err)
	}

	fmt.Printf("observed run: %d iterations, %d workers, %d spans (%d dropped), categories %v\n",
		iters, workers, len(snap.Spans), snap.DroppedSpans, snap.Categories())
	keys := make([]string, 0, len(res.AlgSeconds))
	for k := range res.AlgSeconds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-28s cluster %.6fs  spans %.6fs\n", k, res.AlgSeconds[k], perWorker[k])
	}
	fmt.Println("span sums reconcile with AlgSeconds within 1%")

	if tracePath != "" {
		var buf bytes.Buffer
		if err := snap.WriteChromeTrace(&buf); err != nil {
			return fmt.Errorf("rendering trace: %w", err)
		}
		if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
			return fmt.Errorf("emitted trace failed schema validation: %w", err)
		}
		if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Printf("wrote Chrome trace to %s (open in Perfetto or chrome://tracing)\n", tracePath)
	}
	if metricsPath != "" {
		var buf bytes.Buffer
		if err := snap.WriteMetricsJSON(&buf); err != nil {
			return fmt.Errorf("rendering metrics: %w", err)
		}
		if err := os.WriteFile(metricsPath, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
		fmt.Printf("wrote metrics dump to %s\n", metricsPath)
	}
	return nil
}
