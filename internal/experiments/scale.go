package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"

	"compso/internal/cluster"
	"compso/internal/collective"
	"compso/internal/des"
	"compso/internal/train"
)

// Mega-scale sweep harness behind "compso-bench scale": the discrete-event
// engine (internal/des) replays the COMPSO training loop's communication
// program at world sizes the goroutine engine cannot reach (64 → 8192
// ranks in one process), reporting wall-clock throughput (simulated
// steps/second), per-worker memory footprint, and simulated comm time per
// step. Before any mega run, an embedded small-world identity leg replays
// the same program on BOTH engines and refuses to emit a report unless
// the results are bit-identical — the golden contract guarding every
// number in the sweep.

// ScaleSchema identifies the bench-scale JSON format.
const ScaleSchema = "compso/bench-scale/v1"

// ScaleRow is one world size's measurement.
type ScaleRow struct {
	// Workers is the simulated world size; Nodes the node count it maps to.
	Workers int `json:"workers"`
	Nodes   int `json:"nodes"`
	// Policy is the collective policy the sweep forced ("auto" below the
	// mega threshold, "hierarchical" above — flat rings at 8k ranks cost
	// millions of scheduled transfers per collective).
	Policy string `json:"policy"`
	// Steps is the number of simulated training iterations.
	Steps int `json:"steps"`
	// Collectives counts the executed collectives.
	Collectives int64 `json:"collectives"`
	// SimSeconds is the simulated makespan; CommSeconds the simulated
	// seconds the slowest rank spent blocked in collectives.
	SimSeconds  float64 `json:"sim_seconds"`
	CommSeconds float64 `json:"comm_seconds"`
	// WireGB is total gigabytes put on the simulated wire.
	WireGB float64 `json:"wire_gb"`
	// WallSeconds is real elapsed time for the replay; StepsPerSec the
	// headline sim-steps/second throughput.
	WallSeconds float64 `json:"wall_seconds"`
	StepsPerSec float64 `json:"steps_per_sec"`
	// HeapBytes is the live-heap growth attributable to the run (bytes,
	// measured after a GC with the world still held). FootprintBytes is
	// the world's own per-rank simulator state (des.World.Footprint);
	// BytesPerWorker is that divided by the world size.
	HeapBytes      uint64  `json:"heap_bytes"`
	FootprintBytes int64   `json:"footprint_bytes"`
	BytesPerWorker float64 `json:"bytes_per_worker"`
}

// ScaleReport is the full sweep output.
type ScaleReport struct {
	Schema     string            `json:"schema"`
	Quick      bool              `json:"quick"`
	Model      string            `json:"model"`
	Compressor string            `json:"compressor"`
	Calib      train.CommSimInfo `json:"calibration"`
	// IdentityWorlds lists the world sizes where the event engine was
	// re-verified bit-identical to the goroutine engine before the sweep.
	IdentityWorlds []int      `json:"identity_worlds"`
	Rows           []ScaleRow `json:"rows"`
	// Comm is the event-engine-measured collective breakdown at mega
	// world sizes (the CommBreakdown experiment beyond goroutine reach).
	Comm []CommRow `json:"comm"`
}

// megaPolicyThreshold is the world size at or above which the sweep
// forces hierarchical schedules instead of autotuning: the tuner's
// seeding dry-runs every algorithm, and one flat-ring dry run at 8192
// ranks alone schedules ~67M transfers.
const megaPolicyThreshold = 1024

func scalePolicy(p int) string {
	if p >= megaPolicyThreshold {
		return "hierarchical"
	}
	return "auto"
}

// ScaleWorlds returns the sweep's world sizes. quick keeps CI runs fast.
func ScaleWorlds(quick bool) []int {
	if quick {
		return []int{64, 256, 1024}
	}
	return []int{64, 256, 1024, 4096, 8192}
}

// RunScale executes the mega-scale sweep. maxHeapMB > 0 enforces a hard
// ceiling on the process's total runtime-owned memory (runtime.MemStats
// Sys — an RSS proxy) after every world; exceeding it fails the run.
func RunScale(quick bool, maxHeapMB int) (*ScaleReport, error) {
	simCfg := train.CommSimConfig{
		Model:      "ResNet-50",
		Compressor: "compso",
		Steps:      20,
		KFAC:       true,
		Seed:       17,
	}
	if quick {
		simCfg.Steps = 8
	}
	rep := &ScaleReport{
		Schema:     ScaleSchema,
		Quick:      quick,
		Model:      simCfg.Model,
		Compressor: simCfg.Compressor,
	}

	// Identity leg first: the event engine earns its numbers by matching
	// the goroutine engine bit-for-bit on the same program at small P.
	rep.IdentityWorlds = []int{3, 8}
	for _, p := range rep.IdentityWorlds {
		if err := verifyIdentity(simCfg, p); err != nil {
			return nil, fmt.Errorf("experiments: scale identity leg (p=%d): %w", p, err)
		}
	}

	for _, p := range ScaleWorlds(quick) {
		row, calib, err := runScaleWorld(simCfg, p)
		if err != nil {
			return nil, err
		}
		rep.Calib = calib
		rep.Rows = append(rep.Rows, row)
		if maxHeapMB > 0 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.Sys > uint64(maxHeapMB)<<20 {
				return nil, fmt.Errorf("experiments: scale sweep exceeded heap ceiling after p=%d: %d MB used, %d MB allowed",
					p, ms.Sys>>20, maxHeapMB)
			}
		}
	}

	commWorldsList := []int{256, 1024}
	if !quick {
		commWorldsList = append(commWorldsList, 4096)
	}
	comm, err := MegaCommBreakdown(commWorldsList)
	if err != nil {
		return nil, err
	}
	rep.Comm = comm
	return rep, nil
}

// runScaleWorld replays the workload program on one discrete-event world
// and measures it.
func runScaleWorld(simCfg train.CommSimConfig, p int) (ScaleRow, train.CommSimInfo, error) {
	cfg := cluster.Platform1()
	cfg.Collective = scalePolicy(p)
	prog, calib, err := train.BuildCommProgram(simCfg, p)
	if err != nil {
		return ScaleRow{}, calib, err
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	start := time.Now()
	w := des.NewWorld(cfg, p)
	des.RunOnWorld(w, prog)
	wall := time.Since(start).Seconds()

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	var heap uint64
	if after.HeapAlloc > before.HeapAlloc {
		heap = after.HeapAlloc - before.HeapAlloc
	}
	foot := w.Footprint()
	row := ScaleRow{
		Workers:        p,
		Nodes:          (p + cfg.GPUsPerNode - 1) / cfg.GPUsPerNode,
		Policy:         cfg.Collective,
		Steps:          simCfg.Steps,
		Collectives:    w.Collectives(),
		SimSeconds:     w.MaxTime(),
		CommSeconds:    commSecondsOf(w),
		WireGB:         float64(w.WireBytes()) / 1e9,
		WallSeconds:    wall,
		HeapBytes:      heap,
		FootprintBytes: foot,
	}
	if wall > 0 {
		row.StepsPerSec = float64(simCfg.Steps) / wall
	}
	row.BytesPerWorker = float64(foot) / float64(p)
	w.Release()
	return row, calib, nil
}

// commSecondsOf returns the slowest rank's collective-blocked seconds.
func commSecondsOf(w *des.World) float64 {
	worst := 0.0
	for r := 0; r < w.Size(); r++ {
		s := 0.0
		for _, sec := range w.AlgSecondsOf(r) {
			s += sec
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

// verifyIdentity replays the workload program on both engines at world
// size p and errors unless per-rank times, stats, per-algorithm seconds
// and schedule seconds agree bit-for-bit.
func verifyIdentity(simCfg train.CommSimConfig, p int) error {
	idCfg := simCfg
	idCfg.Steps = 4
	// Reduced payload sizes: the goroutine engine moves REAL bytes, and
	// identity only needs both engines replaying the same program.
	idCfg.ElemScale = 1.0 / 64
	prog, _, err := train.BuildCommProgram(idCfg, p)
	if err != nil {
		return err
	}
	cfg := cluster.Platform1()

	c := cluster.New(cfg, p)
	workers := des.RunOnCluster(c, prog)

	w := des.NewWorld(cfg, p)
	defer w.Release()
	des.RunOnWorld(w, prog)

	for r := 0; r < p; r++ {
		if w.TimeOf(r) != workers[r].Time() {
			return fmt.Errorf("rank %d time %v != goroutine engine %v", r, w.TimeOf(r), workers[r].Time())
		}
		if err := mapsEqual(w.StatsOf(r), workers[r].Stats()); err != nil {
			return fmt.Errorf("rank %d stats: %w", r, err)
		}
		if err := mapsEqual(w.AlgSecondsOf(r), workers[r].AlgSeconds()); err != nil {
			return fmt.Errorf("rank %d algseconds: %w", r, err)
		}
	}
	meas, pred := w.ScheduleSeconds()
	refMeas, refPred := workers[0].ScheduleSeconds()
	if meas != refMeas || pred != refPred {
		return fmt.Errorf("schedule seconds (%v, %v) != goroutine engine (%v, %v)", meas, pred, refMeas, refPred)
	}
	return nil
}

func mapsEqual(got, want map[string]float64) error {
	for k, v := range want {
		if g, ok := got[k]; !ok || g != v {
			return fmt.Errorf("key %q: %v != %v", k, got[k], v)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			return fmt.Errorf("extra key %q", k)
		}
	}
	return nil
}

// MegaCommBreakdown is the CommBreakdown experiment beyond goroutine
// reach: for each world size it executes one collective per (op, size,
// algorithm) on a discrete-event world with the algorithm forced, and
// reports the event-engine-measured makespan. Platform 1 only (the sweep
// platform).
func MegaCommBreakdown(worlds []int) ([]CommRow, error) {
	base := cluster.Platform1()
	var rows []CommRow
	for _, p := range worlds {
		for _, op := range commOps {
			algs := cluster.EngineFor(base, p).Algorithms(op)
			sort.Strings(algs)
			for _, n := range commSizes {
				ana := commAnalytic(base, op, n, p)
				group := make([]CommRow, 0, len(algs))
				bestIdx, bestSec := -1, 0.0
				for _, alg := range algs {
					cfg := base
					cfg.Collective = alg
					w := des.NewWorld(cfg, p)
					execUniform(w, op, n)
					sec := w.MaxTime()
					w.Release()
					r := CommRow{
						Platform: cfg.Name, Op: op, Bytes: n, Workers: p,
						Algorithm: alg, Seconds: sec, Analytic: ana,
					}
					if sec > 0 {
						r.Ratio = ana / sec
					}
					if bestIdx < 0 || sec < bestSec {
						bestIdx, bestSec = len(group), sec
					}
					group = append(group, r)
				}
				if bestIdx >= 0 {
					group[bestIdx].Best = true
				}
				rows = append(rows, group...)
			}
		}
	}
	return rows, nil
}

// execUniform issues one collective of n total bytes on the world.
func execUniform(w *des.World, op string, n int) {
	switch op {
	case collective.OpAllGather:
		w.AllGatherUniform(n/w.Size(), "comm")
	case collective.OpAllReduce:
		w.AllReduce(n/4, "comm")
	case collective.OpReduceScatter:
		w.ReduceScatter(n/4, "comm")
	default:
		w.Broadcast(n, 0, "comm")
	}
}

// Render returns the human-readable sweep tables.
func (r *ScaleReport) Render() string {
	t := &Table{
		Title:   "Mega-scale discrete-event sweep (" + r.Model + " + " + r.Compressor + ")",
		Headers: []string{"GPUs", "Nodes", "Policy", "Steps/s", "Sim s", "Comm s", "Wire GB", "KB/worker", "Wall s"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmtF(float64(row.Workers), 0), fmtF(float64(row.Nodes), 0), row.Policy,
			fmtF(row.StepsPerSec, 1), fmtF(row.SimSeconds, 3), fmtF(row.CommSeconds, 3),
			fmtF(row.WireGB, 2), fmtF(row.BytesPerWorker/1024, 1), fmtF(row.WallSeconds, 2),
		})
	}
	out := t.String() + "\n"
	if len(r.Comm) > 0 {
		out += commTable(r.Comm).String() + "\n"
	}
	return out
}

// MarshalIndent returns the JSON encoding CI archives as BENCH_PR10.json.
func (r *ScaleReport) MarshalIndent() ([]byte, error) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// ValidateScale checks a bench-scale JSON report: schema, non-empty rows,
// positive throughput and sane per-worker memory at every world size.
func ValidateScale(blob []byte) error {
	var rep ScaleReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if rep.Schema != ScaleSchema {
		return fmt.Errorf("schema %q, want %q", rep.Schema, ScaleSchema)
	}
	if len(rep.IdentityWorlds) == 0 {
		return fmt.Errorf("no identity worlds recorded")
	}
	if len(rep.Rows) == 0 {
		return fmt.Errorf("no sweep rows")
	}
	seen := map[int]bool{}
	for i, row := range rep.Rows {
		if row.Workers <= 0 {
			return fmt.Errorf("row %d: workers %d", i, row.Workers)
		}
		if seen[row.Workers] {
			return fmt.Errorf("row %d: duplicate world size %d", i, row.Workers)
		}
		seen[row.Workers] = true
		if row.StepsPerSec <= 0 {
			return fmt.Errorf("row %d (p=%d): steps/sec %g", i, row.Workers, row.StepsPerSec)
		}
		if row.SimSeconds <= 0 || row.CommSeconds <= 0 {
			return fmt.Errorf("row %d (p=%d): sim %gs comm %gs", i, row.Workers, row.SimSeconds, row.CommSeconds)
		}
		if row.WireGB <= 0 {
			return fmt.Errorf("row %d (p=%d): wire %g GB", i, row.Workers, row.WireGB)
		}
		if row.Collectives <= 0 {
			return fmt.Errorf("row %d (p=%d): %d collectives", i, row.Workers, row.Collectives)
		}
		if row.BytesPerWorker <= 0 {
			return fmt.Errorf("row %d (p=%d): bytes/worker %g", i, row.Workers, row.BytesPerWorker)
		}
	}
	for _, p := range []int{64, 256, 1024} {
		if !seen[p] {
			return fmt.Errorf("missing world size %d", p)
		}
	}
	if len(rep.Comm) == 0 {
		return fmt.Errorf("no mega comm-breakdown rows")
	}
	return nil
}
