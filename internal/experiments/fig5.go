package experiments

import (
	"fmt"

	"compso/internal/modelzoo"
	"compso/internal/quant"
	"compso/internal/stats"
	"compso/internal/xrand"
)

// Figure 5: the distribution of K-FAC gradient compression error under
// round-to-nearest vs stochastic rounding at error bound 4e-3, for two
// layer types — RN yields a uniform distribution, SR a triangular one,
// which §4.2 identifies as the property that preserves accuracy.

// Fig5Result is one (rounding mode, layer type) histogram.
type Fig5Result struct {
	Mode      quant.Mode
	LayerType string
	Density   []float64
	// Triangularity scores shape: ~0 uniform, ~1 triangular.
	Triangularity float64
}

// fig5Bins matches the visual resolution of the paper's histograms.
const fig5Bins = 21

// Figure5 quantizes two representative ResNet-50 layer gradients (an early
// conv and a late conv — the paper's "layer type 1/2") with each rounding
// mode and histograms the pointwise errors.
func Figure5() ([]Fig5Result, *Table) {
	p := modelzoo.ResNet50()
	layerTypes := map[string]int{
		"layer type 1 (early conv)": 1,
		"layer type 2 (late conv)":  40,
	}
	const eb = 4e-3
	var results []Fig5Result
	table := &Table{
		Title:   "Figure 5: KFAC gradient compression error distribution (eb=4E-3)",
		Headers: []string{"Rounding", "Layer type", "Triangularity", "Shape"},
	}
	for _, mode := range []quant.Mode{quant.RN, quant.SR, quant.P05} {
		for name, layer := range layerTypes {
			rng := xrand.NewSeeded(71)
			raw := p.SyntheticGradient(rng, layer, 400000)
			// The quantizer sees the values the filter keeps (|v| >= eb_f);
			// the sub-bin-width near-zero mass is zeroed by the filter, not
			// rounded, so its error is excluded from the rounding analysis.
			src := raw[:0:0]
			for _, v := range raw {
				if v >= eb || v <= -eb {
					src = append(src, v)
				}
			}
			codes := quant.QuantizeEB(src, eb, mode, rng)
			rec := quant.DequantizeEB(codes, eb, mode)
			h := stats.NewHistogram(-eb, eb, fig5Bins)
			for i := range src {
				h.Add(float64(rec[i]) - float64(src[i]))
			}
			r := Fig5Result{
				Mode: mode, LayerType: name,
				Density:       h.Density(),
				Triangularity: h.Triangularity(),
			}
			results = append(results, r)
			shape := "uniform"
			if r.Triangularity > 0.6 {
				shape = "triangular"
			}
			table.Rows = append(table.Rows, []string{
				mode.String(), name, fmt.Sprintf("%.2f", r.Triangularity), shape,
			})
		}
	}
	return results, table
}
