package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"compso/internal/collective"
)

func TestCommBreakdownShape(t *testing.T) {
	rows, table, err := CommBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(table.Rows) != len(rows) {
		t.Fatalf("%d rows, table has %d", len(rows), len(table.Rows))
	}
	bestPerGroup := map[string]int{}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Fatalf("non-positive simulated time: %+v", r)
		}
		if r.Analytic <= 0 || r.Ratio <= 0 {
			t.Fatalf("bad analytic/ratio: %+v", r)
		}
		key := fmt.Sprintf("%s/%s/%d/%d", r.Platform, r.Op, r.Bytes, r.Workers)
		if r.Best {
			bestPerGroup[key]++
		}
	}
	for key, n := range bestPerGroup {
		if n != 1 {
			t.Fatalf("group %q has %d best rows", key, n)
		}
	}
	// Machine-readable: rows must round-trip through JSON (the -json flag
	// of compso-bench writes exactly this encoding).
	blob, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	var back []CommRow
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) || back[0] != rows[0] {
		t.Fatal("JSON round-trip changed rows")
	}
	if !strings.Contains(table.String(), "hierarchical") {
		t.Fatal("rendered table missing hierarchical rows")
	}
}

func TestCommBreakdownHierarchicalWinsInterNode(t *testing.T) {
	// The paper's platforms are 4-GPU nodes: beyond 4 workers the
	// hierarchical all-reduce must beat the flat ring on both platforms at
	// every size — that is the schedule the autotuner is expected to pick
	// and the reason per-layer aggregated exchanges stay affordable.
	rows, _, err := CommBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, r := range rows {
		if r.Op != collective.OpAllReduce || r.Workers <= 4 || !r.Best {
			continue
		}
		checked++
		if r.Algorithm != collective.AlgHierarchical {
			t.Errorf("%s p=%d %d bytes: best all-reduce is %s", r.Platform, r.Workers, r.Bytes, r.Algorithm)
		}
	}
	if checked == 0 {
		t.Fatal("no inter-node all-reduce rows")
	}
	// Within a single node the hierarchical schedule degenerates to a
	// reduce+broadcast tree. At small sizes its fewer α steps can win, but
	// at the bandwidth-bound 8 MB point the chunked ring must take over.
	for _, r := range rows {
		if r.Workers == 4 && r.Bytes == 1<<23 && r.Best && r.Op == collective.OpAllReduce &&
			r.Algorithm != collective.AlgRing {
			t.Errorf("single-node 8 MB all-reduce picked %s over ring: %+v", r.Algorithm, r)
		}
	}
}
