package experiments

import (
	"sort"

	"compso/internal/cluster"
	"compso/internal/collective"
)

// Communication breakdown: per-algorithm simulated time of the step-level
// collective schedules on both platforms, across message sizes and GPU
// counts. This is the experiment backing the paper's premise that the
// collective schedule matters — on the two-tier Slingshot topology the
// hierarchical schedules (NVLink stage → one NIC crossing per node →
// NVLink broadcast) beat flat rings as soon as the group spans nodes,
// which is why the engine's autotuner exists at all. The Analytic column
// is the closed-form α–β charge the pre-engine simulator used; Ratio > 1
// means the stepped schedule beats that estimate.

// CommRow is one (platform, op, size, world, algorithm) measurement.
type CommRow struct {
	Platform  string  `json:"platform"`
	Op        string  `json:"op"`
	Bytes     int     `json:"bytes"`
	Workers   int     `json:"workers"`
	Algorithm string  `json:"algorithm"`
	Seconds   float64 `json:"seconds"`
	Analytic  float64 `json:"analytic_seconds"`
	Ratio     float64 `json:"ratio"` // Analytic / Seconds
	Best      bool    `json:"best"`  // fastest algorithm in its group
}

var (
	commSizes   = []int{1 << 16, 1 << 20, 1 << 23} // 64 KB, 1 MB, 8 MB
	commWorkers = []int{4, 16, 64}                 // 1, 4 and 16 nodes
	commOps     = []string{collective.OpAllReduce, collective.OpAllGather}
)

// CommBreakdown times every step-level algorithm on both platforms and
// returns the rows plus a rendered table.
func CommBreakdown() ([]CommRow, *Table, error) {
	var rows []CommRow
	for _, cfg := range []cluster.Config{cluster.Platform1(), cluster.Platform2()} {
		for _, p := range commWorkers {
			eng := cluster.EngineFor(cfg, p)
			for _, op := range commOps {
				table := eng.CostTable(op, commSizes)
				algs := make([]string, 0, len(table))
				for alg := range table {
					algs = append(algs, alg)
				}
				sort.Strings(algs)
				for si, n := range commSizes {
					ana := commAnalytic(cfg, op, n, p)
					group := make([]CommRow, 0, len(algs))
					bestIdx, bestSec := -1, 0.0
					for _, alg := range algs {
						sec := table[alg][si]
						r := CommRow{
							Platform: cfg.Name, Op: op, Bytes: n, Workers: p,
							Algorithm: alg, Seconds: sec, Analytic: ana,
						}
						if sec > 0 {
							r.Ratio = ana / sec
						}
						if bestIdx < 0 || sec < bestSec {
							bestIdx, bestSec = len(group), sec
						}
						group = append(group, r)
					}
					if bestIdx >= 0 {
						group[bestIdx].Best = true
					}
					rows = append(rows, group...)
				}
			}
		}
	}
	return rows, commTable(rows), nil
}

// commAnalytic is the legacy closed-form charge for the same operation.
func commAnalytic(cfg cluster.Config, op string, totalBytes, p int) float64 {
	switch op {
	case collective.OpAllReduce:
		return cfg.AllReduceTime(totalBytes, p)
	case collective.OpAllGather:
		sizes := make([]int, p)
		for i := range sizes {
			sizes[i] = totalBytes / p
		}
		return cfg.AllGatherVarTime(sizes, p)
	case collective.OpReduceScatter:
		return cfg.ReduceScatterTime(totalBytes, p)
	default:
		return cfg.BroadcastTime(totalBytes, p)
	}
}

func commTable(rows []CommRow) *Table {
	t := &Table{
		Title:   "Collective schedule breakdown (simulated seconds per call)",
		Headers: []string{"Platform", "Op", "Bytes", "GPUs", "Algorithm", "Seconds", "Analytic", "Ratio", "Best"},
	}
	for _, r := range rows {
		best := ""
		if r.Best {
			best = "*"
		}
		t.Rows = append(t.Rows, []string{
			r.Platform, r.Op, fmtBytes(r.Bytes), fmtF(float64(r.Workers), 0),
			r.Algorithm, fmtF(r.Seconds*1e3, 3) + " ms", fmtF(r.Analytic*1e3, 3) + " ms",
			fmtF(r.Ratio, 2), best,
		})
	}
	return t
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmtF(float64(n>>20), 0) + " MB"
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmtF(float64(n>>10), 0) + " KB"
	default:
		return fmtF(float64(n), 0) + " B"
	}
}
