package experiments

import (
	"fmt"

	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/modelzoo"
)

// Figure 7: communication speedup of cuSZ, QSGD, CocktailSGD and COMPSO
// compressed K-FAC gradient all-gathers across the four models, GPU counts
// {8, 16, 32, 64} and both platforms. As in the paper, the communication
// time excludes (de)compression overhead: the speedup isolates the benefit
// of moving fewer bytes, with layer aggregation (m=4) applied.

// Fig7Row is one (platform, model, method, GPU count) speedup.
type Fig7Row struct {
	Platform, Model, Method string
	GPUs                    int
	CR                      float64
	Speedup                 float64
}

// fig7Compressors returns the Figure 7 method set in plot order.
func fig7Compressors() []struct {
	name string
	mk   func() compress.Compressor
} {
	return []struct {
		name string
		mk   func() compress.Compressor
	}{
		{"cuSZ", func() compress.Compressor { return compress.NewSZ(4e-3) }},
		{"QSGD", func() compress.Compressor { return compress.NewQSGD(8, 61) }},
		{"CocktailSGD", func() compress.Compressor { return compress.NewCocktailSGD(0.2, 8, 62) }},
		{"COMPSO", func() compress.Compressor { return compso.NewCompressor(nil, 0, 63) }},
	}
}

// fig7AggM is the layer-aggregation factor for the communication study.
const fig7AggM = 4

// commTime models the per-iteration K-FAC all-gather time for a gradient
// compressed at the given ratio: each worker owns ~1/gpus of the layers
// (round-robin), aggregates them into groups of m, and in each round every
// worker contributes its next group to a variable-size all-gather (KAISA
// gathers each layer's result immediately on completion, so the exchange
// is a sequence of per-group collectives, not one bulk transfer).
func commTime(p modelzoo.Profile, cfg cluster.Config, gpus int, cr float64, m int) float64 {
	// groupBytes[rank] = that worker's aggregated group sizes in order.
	groupBytes := make([][]int, gpus)
	rounds := 0
	for rank := 0; rank < gpus; rank++ {
		var group int
		count := 0
		for li := rank; li < len(p.Layers); li += gpus {
			group += 4 * p.Layers[li].Params()
			count++
			if count == m {
				groupBytes[rank] = append(groupBytes[rank], group)
				group, count = 0, 0
			}
		}
		if count > 0 {
			groupBytes[rank] = append(groupBytes[rank], group)
		}
		if len(groupBytes[rank]) > rounds {
			rounds = len(groupBytes[rank])
		}
	}
	var total float64
	sizes := make([]int, gpus)
	for r := 0; r < rounds; r++ {
		for rank := 0; rank < gpus; rank++ {
			sizes[rank] = 0
			if r < len(groupBytes[rank]) {
				sizes[rank] = int(float64(groupBytes[rank][r]) / cr)
			}
		}
		total += cfg.AllGatherVarTime(sizes, gpus)
	}
	return total
}

// Figure7 regenerates the communication-speedup comparison.
func Figure7() ([]Fig7Row, *Table, error) {
	var rows []Fig7Row
	table := &Table{
		Title:   "Figure 7: communication speedup of compressed KFAC gradients (agg m=4)",
		Headers: []string{"Platform", "Model", "Method", "GPUs", "CR (x)", "Speedup (x)"},
	}
	for pi, cfg := range []cluster.Config{cluster.Platform1(), cluster.Platform2()} {
		platform := fmt.Sprintf("Platform %d", pi+1)
		for _, p := range modelzoo.All() {
			// Measure each compressor's CR once per model.
			for _, method := range fig7Compressors() {
				cr, err := MeasureCR(p, method.mk(), fig7AggM, 900+int64(pi))
				if err != nil {
					return nil, nil, err
				}
				for _, gpus := range []int{8, 16, 32, 64} {
					base := commTime(p, cfg, gpus, 1, fig7AggM)
					comp := commTime(p, cfg, gpus, cr, fig7AggM)
					speedup := base / comp
					rows = append(rows, Fig7Row{
						Platform: platform, Model: p.Name, Method: method.name,
						GPUs: gpus, CR: cr, Speedup: speedup,
					})
					table.Rows = append(table.Rows, []string{
						platform, p.Name, method.name, fmt.Sprint(gpus),
						fmtF(cr, 1), fmtF(speedup, 2),
					})
				}
			}
		}
	}
	return rows, table, nil
}
