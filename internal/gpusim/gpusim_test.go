package gpusim

import "testing"

func TestTimeZeroElements(t *testing.T) {
	if got := A100().Time(COMPSOFused(), 0); got != 0 {
		t.Fatalf("Time(0) = %g", got)
	}
}

func TestTimeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative element count did not panic")
		}
	}()
	A100().Time(COMPSOFused(), -1)
}

func TestFusionWins(t *testing.T) {
	// §4.5's whole point: the fused pipeline must beat the unfused and the
	// framework-style pipelines at every realistic size.
	d := A100()
	for _, n := range []int{1 << 18, 1 << 22, 1 << 25} {
		fused := d.Throughput(COMPSOFused(), n)
		unfused := d.Throughput(COMPSOUnfused(), n)
		torch := d.Throughput(QSGDTorch(), n)
		if fused <= unfused {
			t.Fatalf("n=%d: fused %g <= unfused %g", n, fused, unfused)
		}
		if fused <= torch {
			t.Fatalf("n=%d: fused %g <= torch %g", n, fused, torch)
		}
	}
}

func TestFigure8Ordering(t *testing.T) {
	// Paper Figure 8 at large sizes: QSGD (CUDA) > COMPSO (CUDA) >
	// SZ (CUDA) > QSGD (PyTorch) > CocktailSGD (PyTorch), and COMPSO is
	// ~1.7x CocktailSGD.
	d := A100()
	n := 32 << 20 / 4 // 32 MB of FP32
	qsgd := d.Throughput(QSGDCUDA(), n)
	compso := d.Throughput(COMPSOFused(), n)
	sz := d.Throughput(SZCUDA(), n)
	qsgdTorch := d.Throughput(QSGDTorch(), n)
	cocktail := d.Throughput(CocktailTorch(), n)
	if !(qsgd > compso && compso > sz && sz > qsgdTorch && qsgdTorch > cocktail) {
		t.Fatalf("ordering violated: qsgd=%g compso=%g sz=%g torch=%g cocktail=%g",
			qsgd, compso, sz, qsgdTorch, cocktail)
	}
	// The paper measures COMPSO 1.7x faster than CocktailSGD; our pure
	// traffic model (which cannot see CocktailSGD's partially overlapping
	// kernels) lands higher, but the speedup must be >1 and bounded.
	if ratio := compso / cocktail; ratio < 1.5 || ratio > 12 {
		t.Fatalf("COMPSO/CocktailSGD = %g, want within [1.5, 12]", ratio)
	}
}

func TestThroughputSaturatesWithSize(t *testing.T) {
	// Launch overhead dominates small inputs; throughput must grow with
	// data size and flatten (Figure 8's x-axis shape).
	d := A100()
	small := d.Throughput(COMPSOFused(), 1<<14)
	large := d.Throughput(COMPSOFused(), 1<<24)
	huge := d.Throughput(COMPSOFused(), 1<<26)
	if small >= large {
		t.Fatalf("throughput did not grow: %g -> %g", small, large)
	}
	if (huge-large)/large > 0.05 {
		t.Fatalf("throughput did not saturate: %g -> %g", large, huge)
	}
}

func TestNaiveReduceSlower(t *testing.T) {
	d := A100()
	n := 1 << 24
	if d.Throughput(COMPSONaiveReduce(), n) >= d.Throughput(COMPSOFused(), n) {
		t.Fatal("block-reduce/warp-shuffle optimization shows no benefit")
	}
}

func TestSortCostGrows(t *testing.T) {
	d := A100()
	p := Pipeline{Name: "sorting", Launches: 2, PassBytesPerElem: 8, SortN: true}
	// Per-element sort cost grows with log n. Compare sizes large enough
	// that launch overhead is amortized in both, isolating the sort term.
	perElemSmall := d.Time(p, 1<<22) / float64(1<<22)
	perElemLarge := d.Time(p, 1<<26) / float64(1<<26)
	if perElemLarge <= perElemSmall {
		t.Fatal("sort cost per element did not grow with size")
	}
}

func TestDecompressTimePositive(t *testing.T) {
	d := A100()
	if d.DecompressTime(COMPSOFused(), 1<<20) <= 0 {
		t.Fatal("DecompressTime not positive")
	}
}

func TestFigure8PipelineSet(t *testing.T) {
	ps := Figure8Pipelines()
	if len(ps) != 5 {
		t.Fatalf("Figure 8 has %d pipelines, want 5", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Fatalf("duplicate pipeline %q", p.Name)
		}
		seen[p.Name] = true
	}
}
