// Package gpusim models the GPU-side cost of the compression pipelines
// (§4.5, Figures 8–9). The paper's architectural argument is that gradient
// compression is O(n) memory-bound work, so kernel time is governed by
// global-memory traffic plus per-kernel launch overhead:
//
//	time = launches·overhead + (bytes moved)/(effective HBM bandwidth)
//
// Fusing the filter/quantizer/encoder kernels (and computing extrema with a
// block-reduce + warp-shuffle hierarchy) removes intermediate global-memory
// round trips, which is exactly why the fused "CUDA" pipelines beat the
// kernel-per-op "PyTorch" pipelines in Figure 8. The pipeline definitions
// below encode each implementation's pass structure; the device constants
// are calibrated to A100-class hardware.
package gpusim

import "fmt"

// Device models a GPU for the roofline estimate.
type Device struct {
	Name string
	// MemBW is the effective global-memory bandwidth available to the
	// irregular, byte-oriented compression kernels in bytes/second. This is
	// far below the HBM peak: bitmap writes and gather/scatter patterns
	// waste transactions.
	MemBW float64
	// LaunchOverhead is the per-kernel launch latency in seconds.
	LaunchOverhead float64
	// SortPassFactor scales the extra passes a device-wide sort costs per
	// log₂(n) step (CocktailSGD's top-k).
	SortPassFactor float64
}

// A100 returns the device model used in the paper's GPU experiments.
func A100() Device {
	return Device{Name: "A100", MemBW: 400e9, LaunchOverhead: 6e-6, SortPassFactor: 0.35}
}

// Pipeline describes one compression implementation's execution shape.
type Pipeline struct {
	Name string
	// Launches is the number of kernel launches per invocation.
	Launches int
	// PassBytesPerElem is the global-memory traffic in bytes per input
	// element across all passes (reads + writes, intermediates included).
	PassBytesPerElem float64
	// SortN adds a device sort over the input (log₂ n extra passes scaled
	// by the device's SortPassFactor).
	SortN bool
}

// The Figure 8 pipeline set. Input elements are FP32 (4 bytes).

// COMPSOFused is the paper's implementation: one extrema pass using
// hierarchical block reduction (read 4 B/elem), then one fused
// filter+SR+pack+encode pass (read 4 B, write ~0.5 B of bitmap+codes).
func COMPSOFused() Pipeline {
	return Pipeline{Name: "COMPSO (CUDA)", Launches: 2, PassBytesPerElem: 8.5}
}

// COMPSOUnfused is the ablation without kernel fusion: filter, quantize and
// encode as separate kernels with materialized intermediates.
func COMPSOUnfused() Pipeline {
	return Pipeline{Name: "COMPSO (unfused)", Launches: 4, PassBytesPerElem: 21}
}

// COMPSONaiveReduce is the ablation without the block-reduce/warp-shuffle
// extrema kernel: a global atomic per element roughly doubles the extrema
// pass traffic.
func COMPSONaiveReduce() Pipeline {
	return Pipeline{Name: "COMPSO (naive reduce)", Launches: 2, PassBytesPerElem: 12.5}
}

// QSGDCUDA is the authors' fused CUDA QSGD: extrema pass + one
// quantize+encode pass. No filter/bitmap work, so it moves slightly fewer
// bytes than COMPSO — the paper notes its throughput exceeds COMPSO's
// (Figure 8) at a lower compression ratio.
func QSGDCUDA() Pipeline {
	return Pipeline{Name: "QSGD (CUDA)", Launches: 2, PassBytesPerElem: 8.2}
}

// SZCUDA is cuSZ: prediction+quantization pass, histogram pass, and a
// Huffman encode pass with codebook construction.
func SZCUDA() Pipeline {
	return Pipeline{Name: "SZ (CUDA)", Launches: 3, PassBytesPerElem: 13}
}

// QSGDTorch is QSGD expressed as framework tensor ops: abs, max, div,
// round, clamp, cast, pack — each a kernel reading and writing full FP32
// tensors (8 B/elem per pass).
func QSGDTorch() Pipeline {
	return Pipeline{Name: "QSGD (PyTorch)", Launches: 7, PassBytesPerElem: 7 * 8}
}

// CocktailTorch is CocktailSGD in the framework: random-sample threshold
// estimation (cheap), then masking, compaction and quantization passes each
// materialized as separate tensor ops. The sampling shortcut avoids a
// device-wide sort, but the pass count still makes it the slowest pipeline
// in Figure 8.
func CocktailTorch() Pipeline {
	return Pipeline{Name: "CocktailSGD (PyTorch)", Launches: 9, PassBytesPerElem: 8.5 * 8}
}

// PowerSGDGEMM models the low-rank family's factor computation: two thin
// GEMMs (P = M·Q, Q = Mᵀ·P) each streaming the gradient matrix once with
// the small-rank accumulators resident, plus a Gram-Schmidt pass over the
// factors (negligible traffic at small k). Launch count covers the two
// GEMM kernels and the orthogonalization.
func PowerSGDGEMM() Pipeline {
	return Pipeline{Name: "PowerSGD (GEMM)", Launches: 3, PassBytesPerElem: 9}
}

// Figure8Pipelines returns the pipelines of Figure 8 in plot order.
func Figure8Pipelines() []Pipeline {
	return []Pipeline{SZCUDA(), QSGDCUDA(), QSGDTorch(), COMPSOFused(), CocktailTorch()}
}

// Time returns the modeled kernel time in seconds to compress nElem FP32
// values. It panics on a non-positive element count with a configured
// pipeline, which indicates an experiment bug.
func (d Device) Time(p Pipeline, nElem int) float64 {
	if nElem < 0 {
		panic(fmt.Sprintf("gpusim: %d elements", nElem))
	}
	if nElem == 0 {
		return 0
	}
	traffic := p.PassBytesPerElem * float64(nElem)
	if p.SortN {
		log2 := 0
		for v := 1; v < nElem; v <<= 1 {
			log2++
		}
		traffic += d.SortPassFactor * float64(log2) * 8 * float64(nElem)
	}
	return float64(p.Launches)*d.LaunchOverhead + traffic/d.MemBW
}

// DecompressTime models the inverse pipeline; decompression reads the
// compressed stream and writes FP32, roughly the same traffic as
// compression for the fused pipelines.
func (d Device) DecompressTime(p Pipeline, nElem int) float64 {
	// Decoders skip the extrema pass but pay serialized entropy decoding;
	// the net effect in the paper's Table 2 is same-order throughput.
	return d.Time(p, nElem)
}

// Throughput returns the modeled compression throughput in input bytes per
// second (the y-axis of Figure 8).
func (d Device) Throughput(p Pipeline, nElem int) float64 {
	t := d.Time(p, nElem)
	if t == 0 {
		return 0
	}
	return 4 * float64(nElem) / t
}
