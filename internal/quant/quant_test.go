package quant

import (
	"math"
	"testing"
	"testing/quick"

	"compso/internal/stats"
	"compso/internal/xrand"
)

func TestQuantizeFixedErrorBound(t *testing.T) {
	rng := xrand.NewSeeded(1)
	src := make([]float32, 5000)
	xrand.Fill(rng, src, 1.0)
	for _, mode := range []Mode{RN, SR, P05} {
		levels, scale := QuantizeFixed(src, 8, mode, rng)
		rec := DequantizeFixed(levels, scale)
		maxErr := 0.0
		for i := range src {
			if e := math.Abs(float64(rec[i] - src[i])); e > maxErr {
				maxErr = e
			}
		}
		// RN error <= scale/2; SR/P05 can be a full bin off.
		bound := scale
		if mode == RN {
			bound = scale/2 + 1e-9
		}
		if maxErr > bound+1e-9 {
			t.Errorf("%v: max error %g > bound %g (scale %g)", mode, maxErr, bound, scale)
		}
	}
}

func TestQuantizeFixedAllZero(t *testing.T) {
	levels, scale := QuantizeFixed(make([]float32, 10), 8, RN, nil)
	if scale != 0 {
		t.Fatalf("scale = %g, want 0", scale)
	}
	for _, l := range levels {
		if l != 0 {
			t.Fatal("nonzero level for zero input")
		}
	}
	rec := DequantizeFixed(levels, scale)
	for _, v := range rec {
		if v != 0 {
			t.Fatal("nonzero reconstruction for zero input")
		}
	}
}

func TestQuantizeFixedBadBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QuantizeFixed(bits=1) did not panic")
		}
	}()
	QuantizeFixed([]float32{1}, 1, RN, nil)
}

func TestQuantizeFixedLevelRange(t *testing.T) {
	rng := xrand.NewSeeded(2)
	src := make([]float32, 1000)
	xrand.Fill(rng, src, 5)
	for _, bits := range []int{2, 4, 8, 16} {
		levels, _ := QuantizeFixed(src, bits, SR, rng)
		maxLevel := int32(1)<<(bits-1) - 1
		for i, l := range levels {
			if l > maxLevel || l < -maxLevel {
				t.Fatalf("bits=%d: level[%d] = %d outside ±%d", bits, i, l, maxLevel)
			}
		}
	}
}

func TestQuantizeEBRespectsErrorBound(t *testing.T) {
	rng := xrand.NewSeeded(3)
	src := make([]float32, 20000)
	xrand.KFACGradient(rng, src, 1.0)
	for _, mode := range []Mode{RN, SR, P05} {
		for _, eb := range []float64{1e-1, 4e-3, 2e-3} {
			codes := QuantizeEB(src, eb, mode, rng)
			rec := DequantizeEB(codes, eb, mode)
			for i := range src {
				if e := math.Abs(float64(rec[i] - src[i])); e > eb+1e-7 {
					t.Fatalf("%v eb=%g: error %g at %d exceeds bound", mode, eb, e, i)
				}
			}
		}
	}
}

func TestQuantizeEBZeroEBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QuantizeEB(eb=0) did not panic")
		}
	}()
	QuantizeEB([]float32{1}, 0, RN, nil)
}

func TestSRIsUnbiased(t *testing.T) {
	// SR's defining property: E[quantized] = value. Quantize the same value
	// many times and check the mean.
	rng := xrand.NewSeeded(4)
	const v = 0.3337
	const eb = 1e-2
	src := make([]float32, 100000)
	for i := range src {
		src[i] = v
	}
	codes := QuantizeEB(src, eb, SR, rng)
	rec := DequantizeEB(codes, eb, SR)
	var sum float64
	for _, r := range rec {
		sum += float64(r)
	}
	mean := sum / float64(len(rec))
	if math.Abs(mean-v) > eb/50 {
		t.Fatalf("SR mean = %g, want ~%g", mean, v)
	}
}

func TestRNIsBiasedOnFixedValue(t *testing.T) {
	// RN always rounds the same direction for a fixed value — deterministic.
	rng := xrand.NewSeeded(5)
	src := []float32{0.333, 0.333}
	a := QuantizeEB(src, 1e-2, RN, rng)
	b := QuantizeEB(src, 1e-2, RN, rng)
	if a[0] != b[0] || a[0] != a[1] {
		t.Fatal("RN was not deterministic")
	}
}

func TestErrorDistributionShapes(t *testing.T) {
	// The paper's §4.2 finding, as a test: SR error is triangular, RN and
	// P0.5 errors are uniform.
	rng := xrand.NewSeeded(6)
	src := make([]float32, 200000)
	xrand.FillUniform(rng, src, -1, 1)
	const eb = 4e-3
	tri := map[Mode]float64{}
	for _, mode := range []Mode{RN, SR, P05} {
		codes := QuantizeEB(src, eb, mode, rng)
		rec := DequantizeEB(codes, eb, mode)
		h := stats.NewHistogram(-eb, eb, 21)
		for i := range src {
			h.Add(float64(rec[i]) - float64(src[i]))
		}
		tri[mode] = h.Triangularity()
	}
	if tri[SR] <= tri[RN] || tri[SR] <= tri[P05] {
		t.Fatalf("SR triangularity %g should exceed RN %g and P05 %g", tri[SR], tri[RN], tri[P05])
	}
	if tri[SR] < 0.75 {
		t.Fatalf("SR triangularity = %g, want >= 0.75", tri[SR])
	}
}

func TestZigZag(t *testing.T) {
	cases := map[int32]uint32{0: 0, -1: 1, 1: 2, -2: 3, 2: 4, 1 << 30: 1 << 31}
	for v, want := range cases {
		if got := ZigZag(v); got != want {
			t.Fatalf("ZigZag(%d) = %d, want %d", v, got, want)
		}
		if back := UnZigZag(want); back != v {
			t.Fatalf("UnZigZag(%d) = %d, want %d", want, back, v)
		}
	}
}

func TestZigZagRoundTripProperty(t *testing.T) {
	f := func(v int32) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackUnpackCodes(t *testing.T) {
	codes := []int32{0, 1, -1, 50, -63, 63, 0, 0}
	packed := PackCodes(codes)
	got, err := UnpackCodes(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(codes) {
		t.Fatalf("len = %d, want %d", len(got), len(codes))
	}
	for i := range codes {
		if got[i] != codes[i] {
			t.Fatalf("code %d = %d, want %d", i, got[i], codes[i])
		}
	}
}

func TestPackCodesUsesMinimalWidth(t *testing.T) {
	// Max zig-zag value of 63 (-32..31) needs 7 bits exactly — the §4.3
	// example of beating QSGD's fixed 8 bits by ~14%.
	codes := make([]int32, 1000)
	for i := range codes {
		codes[i] = int32(i%64) - 32
	}
	packed := PackCodes(codes)
	// ~1000*7/8 = 875 bytes plus a small header.
	if len(packed) > 890 {
		t.Fatalf("packed %d codes into %d bytes, want ~880", len(codes), len(packed))
	}
}

func TestPackCodesEmptyAndZero(t *testing.T) {
	for _, codes := range [][]int32{{}, {0, 0, 0}} {
		got, err := UnpackCodes(PackCodes(codes))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(codes) {
			t.Fatalf("len = %d, want %d", len(got), len(codes))
		}
		for i := range codes {
			if got[i] != 0 {
				t.Fatal("nonzero code after round trip")
			}
		}
	}
}

func TestUnpackCodesCorrupt(t *testing.T) {
	packed := PackCodes([]int32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if _, err := UnpackCodes(packed[:len(packed)-2]); err == nil {
		t.Fatal("truncated pack accepted")
	}
	if _, err := UnpackCodes(nil); err == nil {
		t.Fatal("empty pack accepted")
	}
}

func TestPackUnpackProperty(t *testing.T) {
	f := func(raw []int32) bool {
		got, err := UnpackCodes(PackCodes(raw))
		if err != nil || len(got) != len(raw) {
			return false
		}
		for i := range raw {
			if got[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitWidthFor(t *testing.T) {
	// eb=1e-2 with range ±0.5: RN bins of width 2e-2 → 25 bins per side →
	// codes ±25 → zig-zag max 50 → 6 bits.
	if got := BitWidthFor(0.5, 1e-2, RN); got != 6 {
		t.Fatalf("BitWidthFor(0.5, 1e-2, RN) = %d, want 6", got)
	}
	// SR bins are half as wide → one more bit.
	if got := BitWidthFor(0.5, 1e-2, SR); got != 7 {
		t.Fatalf("BitWidthFor(0.5, 1e-2, SR) = %d, want 7", got)
	}
	if got := BitWidthFor(0, 1e-2, RN); got != 0 {
		t.Fatalf("BitWidthFor(0,...) = %d, want 0", got)
	}
}

func TestModeString(t *testing.T) {
	if RN.String() != "RN" || SR.String() != "SR" || P05.String() != "P0.5" {
		t.Fatal("Mode.String mismatch")
	}
}

func TestPlaneSplitJoinRoundTrip(t *testing.T) {
	codes := []int32{0, 1, -1, 127, -128, 255, -256, 70000, -70000}
	planes := PlaneSplit(codes)
	if len(planes) != 3 { // zig-zag of ±70000 needs 18 bits → 3 planes
		t.Fatalf("planes = %d, want 3", len(planes))
	}
	back, err := PlaneJoin(planes, len(codes))
	if err != nil {
		t.Fatal(err)
	}
	for i := range codes {
		if back[i] != codes[i] {
			t.Fatalf("code %d = %d, want %d", i, back[i], codes[i])
		}
	}
}

func TestPlaneSplitAllZero(t *testing.T) {
	planes := PlaneSplit([]int32{0, 0, 0})
	if len(planes) != 0 {
		t.Fatalf("all-zero input produced %d planes", len(planes))
	}
	back, err := PlaneJoin(planes, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range back {
		if c != 0 {
			t.Fatal("nonzero code from zero planes")
		}
	}
}

func TestPlaneJoinValidation(t *testing.T) {
	if _, err := PlaneJoin([][]byte{{1, 2}}, 3); err == nil {
		t.Fatal("wrong plane length accepted")
	}
	if _, err := PlaneJoin(make([][]byte, 5), 0); err == nil {
		t.Fatal("5 planes accepted")
	}
}

func TestPlaneSplitJoinProperty(t *testing.T) {
	f := func(raw []int32) bool {
		planes := PlaneSplit(raw)
		back, err := PlaneJoin(planes, len(raw))
		if err != nil {
			return false
		}
		for i := range raw {
			if back[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaneZeroHighBytesCompressWell(t *testing.T) {
	// The design rationale: small codes leave the high planes all-zero.
	codes := make([]int32, 1000)
	for i := range codes {
		codes[i] = int32(i%300) - 150
	}
	planes := PlaneSplit(codes)
	if len(planes) != 2 {
		t.Fatalf("planes = %d", len(planes))
	}
	nonzero := 0
	for _, b := range planes[1] {
		if b != 0 {
			nonzero++
		}
	}
	if nonzero > len(planes[1])/2 {
		t.Fatalf("high plane has %d/%d nonzero bytes", nonzero, len(planes[1]))
	}
}

func TestRoundModePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown mode did not panic")
		}
	}()
	QuantizeEB([]float32{1}, 1e-2, Mode(99), nil)
}

func TestModeStringUnknown(t *testing.T) {
	if got := Mode(42).String(); got != "Mode(42)" {
		t.Fatalf("Mode(42).String() = %q", got)
	}
}

func TestP05OnExactIntegerLevels(t *testing.T) {
	// Values exactly on a level must never move under P0.5.
	rng := xrand.NewSeeded(50)
	const eb = 0.015625 // 2^-6: exact in binary, so multiples are exact too
	src := []float32{0, eb, -3 * eb}
	codes := QuantizeEB(src, eb, P05, rng)
	rec := DequantizeEB(codes, eb, P05)
	for i := range src {
		if math.Abs(float64(rec[i]-src[i])) > 1e-9 {
			t.Fatalf("exact level moved: %g -> %g", src[i], rec[i])
		}
	}
}
