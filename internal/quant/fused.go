package quant

import (
	"math"
	"math/bits"
	"math/rand/v2"

	"compso/internal/bitstream"
)

// This file holds the single-pass fused kernels behind the optimized
// compressors (§4.5 of the paper: "kernel fusion techniques to combine
// multiple operations into a single kernel, reducing the overhead of kernel
// launches and intermediate data measurement"). Each kernel walks the input
// exactly once, produces zig-zagged codes directly (the representation both
// the byte-plane layout and the dense bit packing consume), and tracks the
// running maximum so the caller knows the plane count / bit width without a
// second scan. The arithmetic — including the order and number of RNG draws
// — is bit-for-bit identical to the multi-pass Filter/QuantizeEB/ZigZag
// pipeline, which the equivalence tests in internal/compress enforce.

// BinWidth exposes the quantization bin width for an error bound under a
// rounding mode (RN lands within half a bin; SR/P05 can land a full bin
// away), so fused kernels outside this package size their grids identically
// to QuantizeEB.
func BinWidth(eb float64, mode Mode) float64 { return binWidth(eb, mode) }

// zigZag64 matches the int32 truncation + ZigZag mapping the multi-pass
// pipeline applies to each rounded level.
func zigZag64(l int64) uint32 { return ZigZag(int32(l)) }

// QuantizeZigInto quantizes src under bin width binW into zig-zagged codes,
// writing dst[i] for every element, and returns the maximum code. dst must
// have length >= len(src). It fuses QuantizeEB and ZigZag into one pass;
// rng is required for SR and P05 and consumed exactly as QuantizeEB does.
func QuantizeZigInto(dst []uint32, src []float32, binW float64, mode Mode, rng *rand.Rand) (maxZig uint32) {
	switch mode {
	case SR:
		for i, v := range src {
			x := float64(v) / binW
			floor := math.Floor(x)
			l := int64(floor)
			if rng.Float64() < x-floor {
				l++
			}
			z := zigZag64(l)
			dst[i] = z
			if z > maxZig {
				maxZig = z
			}
		}
	case RN:
		for i, v := range src {
			z := zigZag64(int64(math.Round(float64(v) / binW)))
			dst[i] = z
			if z > maxZig {
				maxZig = z
			}
		}
	default: // P05
		for i, v := range src {
			z := zigZag64(round(float64(v)/binW, mode, rng))
			dst[i] = z
			if z > maxZig {
				maxZig = z
			}
		}
	}
	return maxZig
}

// FilterQuantizeZig fuses the filter scan and error-bounded quantization:
// values with |v| < ebf set their bit in bitmap (LSB-first, exactly the
// filter.Apply layout) and are dropped; the rest are quantized at bin width
// binW and written zig-zagged to dst in order. bitmap must have length
// (len(src)+7)/8 and is fully overwritten; dst must have length >=
// len(src). It returns the kept count and the maximum zig-zag code.
func FilterQuantizeZig(bitmap []byte, dst []uint32, src []float32, ebf, binW float64, mode Mode, rng *rand.Rand) (kept int, maxZig uint32) {
	var cur byte
	if mode == SR {
		// Specialized loop for the paper's default rounding mode: no
		// per-element mode switch in the hot path.
		for i, v := range src {
			if math.Abs(float64(v)) < ebf {
				cur |= 1 << (i & 7)
			} else {
				x := float64(v) / binW
				floor := math.Floor(x)
				l := int64(floor)
				if rng.Float64() < x-floor {
					l++
				}
				z := zigZag64(l)
				dst[kept] = z
				kept++
				if z > maxZig {
					maxZig = z
				}
			}
			if i&7 == 7 {
				bitmap[i>>3] = cur
				cur = 0
			}
		}
	} else {
		for i, v := range src {
			if math.Abs(float64(v)) < ebf {
				cur |= 1 << (i & 7)
			} else {
				z := zigZag64(round(float64(v)/binW, mode, rng))
				dst[kept] = z
				kept++
				if z > maxZig {
					maxZig = z
				}
			}
			if i&7 == 7 {
				bitmap[i>>3] = cur
				cur = 0
			}
		}
	}
	if len(src)&7 != 0 {
		bitmap[len(src)>>3] = cur
	}
	return kept, maxZig
}

// FilterQuantizeZigPCG is FilterQuantizeZig specialized to stochastic
// rounding over a concrete PCG source: the rounding draw applies
// (*rand.Rand).Float64's exact formula to the PCG directly, so the stream
// matches a rand.Rand wrapping the same PCG while the per-kept-value hot
// path skips the rand.Source interface dispatch.
func FilterQuantizeZigPCG(bitmap []byte, dst []uint32, src []float32, ebf, binW float64, pcg *rand.PCG) (kept int, maxZig uint32) {
	// The filter test runs in the integer domain: float32→float64 conversion
	// is exact, so |v| < ebf holds iff |v| < t for t = the smallest float32
	// >= ebf, and for non-negative floats (plus NaN/Inf, whose magnitudes
	// compare above every finite t exactly as math.Abs(NaN/Inf) < ebf is
	// false) that order matches the order of their bit patterns.
	t := float32(ebf)
	if float64(t) < ebf {
		t = math.Nextafter32(t, float32(math.Inf(1)))
	}
	tb := math.Float32bits(t)
	n := len(src)
	// 64-element blocks: the filter word is built branch-free (both operands
	// of the subtraction are below 2^31, so its sign bit is the comparison),
	// then only the kept lanes run the quantizer, walked in index order via
	// TrailingZeros64 so the RNG stream matches the element-at-a-time loop.
	nw := n >> 6
	for wi := 0; wi < nw; wi++ {
		blk := src[wi<<6 : wi<<6+64 : wi<<6+64]
		var w uint64
		for _, v := range blk {
			bit := uint64((math.Float32bits(v)&0x7fffffff - tb) >> 31)
			w = w>>1 | bit<<63
		}
		base := wi << 3
		bitmap[base] = byte(w)
		bitmap[base+1] = byte(w >> 8)
		bitmap[base+2] = byte(w >> 16)
		bitmap[base+3] = byte(w >> 24)
		bitmap[base+4] = byte(w >> 32)
		bitmap[base+5] = byte(w >> 40)
		bitmap[base+6] = byte(w >> 48)
		bitmap[base+7] = byte(w >> 56)
		for inv := ^w; inv != 0; inv &= inv - 1 {
			j := bits.TrailingZeros64(inv)
			x := float64(blk[j]) / binW
			floor := math.Floor(x)
			l := int64(floor)
			if float64(pcg.Uint64()<<11>>11)/(1<<53) < x-floor {
				l++
			}
			z := zigZag64(l)
			dst[kept] = z
			kept++
			if z > maxZig {
				maxZig = z
			}
		}
	}
	var cur byte
	for i := nw << 6; i < n; i++ {
		if math.Float32bits(src[i])&0x7fffffff < tb {
			cur |= 1 << (i & 7)
		} else {
			x := float64(src[i]) / binW
			floor := math.Floor(x)
			l := int64(floor)
			if float64(pcg.Uint64()<<11>>11)/(1<<53) < x-floor {
				l++
			}
			z := zigZag64(l)
			dst[kept] = z
			kept++
			if z > maxZig {
				maxZig = z
			}
		}
		if i&7 == 7 {
			bitmap[i>>3] = cur
			cur = 0
		}
	}
	if n&7 != 0 {
		bitmap[n>>3] = cur
	}
	return kept, maxZig
}

// QuantizeZigIntoPCG is QuantizeZigInto's stochastic-rounding loop over a
// concrete PCG source, mirroring FilterQuantizeZigPCG.
func QuantizeZigIntoPCG(dst []uint32, src []float32, binW float64, pcg *rand.PCG) (maxZig uint32) {
	for i, v := range src {
		x := float64(v) / binW
		floor := math.Floor(x)
		l := int64(floor)
		if float64(pcg.Uint64()<<11>>11)/(1<<53) < x-floor {
			l++
		}
		z := zigZag64(l)
		dst[i] = z
		if z > maxZig {
			maxZig = z
		}
	}
	return maxZig
}

// PlaneCount returns the number of byte planes needed for the given maximum
// zig-zag code — the PlaneSplit sizing rule without materializing planes.
func PlaneCount(maxZig uint32) int {
	n := 0
	for maxZig != 0 {
		n++
		maxZig >>= 8
	}
	return n
}

// FillPlane extracts byte plane p (little-endian byte p of every zig-zag
// code) from zigs into dst. dst must have length len(zigs). It is the
// per-plane half of PlaneSplit, run against the fused kernels' zig-zag
// output so only one plane needs to be live at a time.
func FillPlane(dst []byte, zigs []uint32, p int) {
	shift := uint(8 * p)
	for i, z := range zigs {
		dst[i] = byte(z >> shift)
	}
}

// DequantizeZig converts one zig-zag code back to its value at bin width
// binW, matching DequantizeEB's arithmetic.
func DequantizeZig(z uint32, binW float64) float32 {
	return float32(float64(UnZigZag(z)) * binW)
}

// PackZigs serializes pre-zig-zagged codes with known maximum into the
// PackCodes wire format (count, 6-bit width, packed codes), running the bit
// writer over buf's storage so callers can pass a pooled buffer. The
// returned slice is the flushed stream; its backing array is buf's unless
// append had to grow it.
func PackZigs(buf []byte, zigs []uint32, maxZig uint32) []byte {
	width := uint(bits.Len32(maxZig)) // 0 for all-zero input
	var w bitstream.Writer
	w.ResetBuf(buf)
	w.WriteUvarint(uint64(len(zigs)))
	w.WriteBits(uint64(width), 6)
	for _, z := range zigs {
		w.WriteBits(uint64(z), width)
	}
	return w.Bytes()
}
