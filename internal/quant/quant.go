// Package quant implements the lossy quantization stage of the gradient
// compressors: value normalization (Eq. 3 of the paper), the three rounding
// modes the paper analyses (round-to-nearest, stochastic rounding, and the
// equal-probability P0.5 mode from §4.2), fixed-bit quantization as used by
// QSGD, and the fine-grained error-bounded quantization that COMPSO's
// variable bit-width packing is built on (§4.3).
package quant

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"

	"compso/internal/bitstream"
)

// Mode selects the rounding scheme (Eq. 4 and §4.2).
type Mode int

const (
	// RN rounds to the nearest representable level — deterministic, uniform
	// error distribution (what SZ uses).
	RN Mode = iota
	// SR rounds stochastically with probability proportional to proximity
	// (Eq. 4) — unbiased, triangular error distribution (what QSGD and
	// COMPSO use).
	SR
	// P05 rounds up or down with equal probability — the "mode-2 SR" control
	// from §4.2: non-deterministic yet uniform error distribution, used to
	// show that the triangular shape (not non-determinism itself) is what
	// preserves accuracy.
	P05
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case RN:
		return "RN"
	case SR:
		return "SR"
	case P05:
		return "P0.5"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// round maps the real-valued level x to an integer level per the mode.
// rng may be nil for RN.
func round(x float64, mode Mode, rng *rand.Rand) int64 {
	switch mode {
	case RN:
		return int64(math.Round(x))
	case SR:
		floor := math.Floor(x)
		p := x - floor
		if rng.Float64() < p {
			return int64(floor) + 1
		}
		return int64(floor)
	case P05:
		floor := math.Floor(x)
		if x == floor {
			return int64(floor)
		}
		if rng.Float64() < 0.5 {
			return int64(floor) + 1
		}
		return int64(floor)
	default:
		panic(fmt.Sprintf("quant: unknown mode %d", mode))
	}
}

// MaxAbs returns max(|v|) over src, ignoring NaNs (0 for empty input).
func MaxAbs(src []float32) float64 {
	var m float64
	for _, v := range src {
		if a := math.Abs(float64(v)); a > m && !math.IsNaN(a) {
			m = a
		}
	}
	return m
}

// QuantizeFixed performs n-bit quantization in the QSGD style: values are
// normalized by the maximum magnitude (Eq. 3) and mapped to integer levels
// in [−(2^(bits−1)−1), 2^(bits−1)−1] using the given rounding mode.
// It returns the levels and the scale needed to dequantize. bits must be in
// [2, 16]. rng is required for SR and P05.
func QuantizeFixed(src []float32, bitWidth int, mode Mode, rng *rand.Rand) ([]int32, float64) {
	if bitWidth < 2 || bitWidth > 16 {
		panic(fmt.Sprintf("quant: QuantizeFixed bits %d outside [2,16]", bitWidth))
	}
	levels := make([]int32, len(src))
	maxAbs := MaxAbs(src)
	if maxAbs == 0 {
		return levels, 0
	}
	maxLevel := float64(int32(1)<<(bitWidth-1) - 1)
	scale := maxAbs / maxLevel
	for i, v := range src {
		x := float64(v) / scale
		l := round(x, mode, rng)
		if l > int64(maxLevel) {
			l = int64(maxLevel)
		}
		if l < -int64(maxLevel) {
			l = -int64(maxLevel)
		}
		levels[i] = int32(l)
	}
	return levels, scale
}

// DequantizeFixed reverses QuantizeFixed.
func DequantizeFixed(levels []int32, scale float64) []float32 {
	out := make([]float32, len(levels))
	for i, l := range levels {
		out[i] = float32(float64(l) * scale)
	}
	return out
}

// binWidth returns the quantization bin width that guarantees a pointwise
// error of at most eb under the given rounding mode: RN lands within half a
// bin of the value, while SR/P05 can land a full bin away.
func binWidth(eb float64, mode Mode) float64 {
	if mode == RN {
		return 2 * eb
	}
	return eb
}

// QuantizeEB quantizes src with an absolute error bound eb: each value maps
// to the integer code round(v/binWidth), so |dequantized − v| <= eb holds
// for every element under any rounding mode. This is COMPSO's fine-grained
// error-bounded quantizer: the code range adapts to the data range, so the
// bit width packed downstream follows the error bound instead of a rigid
// 8/4/2/1-bit grid. It panics if eb <= 0.
func QuantizeEB(src []float32, eb float64, mode Mode, rng *rand.Rand) []int32 {
	if eb <= 0 {
		panic(fmt.Sprintf("quant: error bound %g <= 0", eb))
	}
	w := binWidth(eb, mode)
	codes := make([]int32, len(src))
	for i, v := range src {
		codes[i] = int32(round(float64(v)/w, mode, rng))
	}
	return codes
}

// DequantizeEB reverses QuantizeEB with the same eb and mode.
func DequantizeEB(codes []int32, eb float64, mode Mode) []float32 {
	w := binWidth(eb, mode)
	out := make([]float32, len(codes))
	for i, c := range codes {
		out[i] = float32(float64(c) * w)
	}
	return out
}

// ZigZag maps signed codes to unsigned so that small magnitudes of either
// sign become small values, which is what makes the variable-width packing
// and the entropy coders effective.
func ZigZag(v int32) uint32 { return uint32(v<<1) ^ uint32(v>>31) }

// UnZigZag reverses ZigZag.
func UnZigZag(u uint32) int32 { return int32(u>>1) ^ -int32(u&1) }

// PackCodes serializes signed quantization codes at the minimum bit width
// that covers the largest zig-zag value — §4.3's packing of (for example)
// 7-bit codes into bytes where QSGD would spend 8. The output is
// self-describing (count, width, then the bit-packed codes).
func PackCodes(codes []int32) []byte {
	var maxZig uint32
	for _, c := range codes {
		if z := ZigZag(c); z > maxZig {
			maxZig = z
		}
	}
	width := uint(bits.Len32(maxZig)) // 0 for all-zero input
	w := bitstream.NewWriter(len(codes)*int(width)/8 + 16)
	w.WriteUvarint(uint64(len(codes)))
	w.WriteBits(uint64(width), 6)
	for _, c := range codes {
		w.WriteBits(uint64(ZigZag(c)), width)
	}
	return w.Bytes()
}

// UnpackCodes reverses PackCodes. It returns an error on truncated or
// corrupt input.
func UnpackCodes(buf []byte) ([]int32, error) {
	r := bitstream.NewReader(buf)
	n, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("quant: unpack count: %w", err)
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("quant: implausible code count %d", n)
	}
	width64, err := r.ReadBits(6)
	if err != nil {
		return nil, fmt.Errorf("quant: unpack width: %w", err)
	}
	if width64 > 32 {
		return nil, fmt.Errorf("quant: invalid code width %d", width64)
	}
	width := uint(width64)
	codes := make([]int32, n)
	for i := range codes {
		z, err := r.ReadBits(width)
		if err != nil {
			return nil, fmt.Errorf("quant: unpack code %d: %w", i, err)
		}
		codes[i] = UnZigZag(uint32(z))
	}
	return codes, nil
}

// BitWidthFor returns the packed bit width QuantizeEB+PackCodes would use
// for data with the given max magnitude and error bound — the "eb 1e-2 →
// 100 bins → 7 bits" sizing rule of §4.3, exposed for the performance model.
func BitWidthFor(maxAbs, eb float64, mode Mode) int {
	if eb <= 0 || maxAbs <= 0 {
		return 0
	}
	maxCode := int64(math.Ceil(maxAbs / binWidth(eb, mode)))
	return bits.Len64(uint64(maxCode) << 1) // zig-zag doubles the range
}

// PlaneSplit decomposes the zig-zag representation of codes into byte
// planes: plane p holds byte p (little-endian) of every code. Entropy
// coders work far better on byte-aligned planes than on a dense bit-packed
// stream (packed symbols straddle byte boundaries and destroy the byte
// statistics an order-0 coder exploits), and the plane layout is exactly
// what a GPU kernel would emit coalesced. Planes beyond the width of the
// largest code are omitted; all-zero input yields zero planes.
func PlaneSplit(codes []int32) [][]byte {
	var maxZig uint32
	for _, c := range codes {
		if z := ZigZag(c); z > maxZig {
			maxZig = z
		}
	}
	nPlanes := (bits.Len32(maxZig) + 7) / 8
	planes := make([][]byte, nPlanes)
	for p := range planes {
		planes[p] = make([]byte, len(codes))
	}
	for i, c := range codes {
		z := ZigZag(c)
		for p := 0; p < nPlanes; p++ {
			planes[p][i] = byte(z >> (8 * p))
		}
	}
	return planes
}

// PlaneJoin reverses PlaneSplit for n codes. It returns an error if any
// plane has the wrong length or there are too many planes.
func PlaneJoin(planes [][]byte, n int) ([]int32, error) {
	if len(planes) > 4 {
		return nil, fmt.Errorf("quant: %d byte planes (max 4)", len(planes))
	}
	for p, plane := range planes {
		if len(plane) != n {
			return nil, fmt.Errorf("quant: plane %d has %d bytes, want %d", p, len(plane), n)
		}
	}
	codes := make([]int32, n)
	for i := range codes {
		var z uint32
		for p := range planes {
			z |= uint32(planes[p][i]) << (8 * p)
		}
		codes[i] = UnZigZag(z)
	}
	return codes, nil
}
