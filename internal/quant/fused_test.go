package quant

import (
	"math"
	"testing"

	"compso/internal/xrand"
)

// TestQuantizeZigIntoMatchesMultiPass proves the fused kernel consumes the
// RNG stream and produces codes exactly like QuantizeEB + ZigZag.
func TestQuantizeZigIntoMatchesMultiPass(t *testing.T) {
	for _, mode := range []Mode{RN, SR, P05} {
		for _, n := range []int{0, 1, 7, 8, 1000} {
			src := make([]float32, n)
			xrand.KFACGradient(xrand.NewSeeded(42+int64(n)), src, 1.0)
			eb := 4e-3

			ref := QuantizeEB(src, eb, mode, xrand.NewSeeded(7))
			dst := make([]uint32, n)
			maxZig := QuantizeZigInto(dst, src, BinWidth(eb, mode), mode, xrand.NewSeeded(7))

			var wantMax uint32
			for i, c := range ref {
				z := ZigZag(c)
				if z > wantMax {
					wantMax = z
				}
				if dst[i] != z {
					t.Fatalf("mode %v n=%d: code %d: fused %d, multi-pass %d", mode, n, i, dst[i], z)
				}
			}
			if maxZig != wantMax {
				t.Fatalf("mode %v n=%d: maxZig %d, want %d", mode, n, maxZig, wantMax)
			}
		}
	}
}

// TestFilterQuantizeZigMatchesMultiPass proves the fused filter+quantize
// kernel reproduces filter.Apply's bitmap and the kept-value codes bit for
// bit. The filter package is not imported to avoid a cycle; the reference
// bitmap is built inline with the same rule.
func TestFilterQuantizeZigMatchesMultiPass(t *testing.T) {
	for _, mode := range []Mode{RN, SR, P05} {
		for _, n := range []int{0, 1, 7, 8, 9, 4096, 4099} {
			src := make([]float32, n)
			xrand.KFACGradient(xrand.NewSeeded(3*int64(n)+1), src, 1.0)
			ebf, ebq := 4e-3, 4e-3

			// Multi-pass reference: filter scan, then quantize kept values.
			refBitmap := make([]byte, (n+7)/8)
			var keptVals []float32
			for i, v := range src {
				if abs64(v) < ebf {
					refBitmap[i/8] |= 1 << (i % 8)
				} else {
					keptVals = append(keptVals, v)
				}
			}
			refCodes := QuantizeEB(keptVals, ebq, mode, xrand.NewSeeded(11))

			bitmap := make([]byte, (n+7)/8)
			dst := make([]uint32, n)
			kept, maxZig := FilterQuantizeZig(bitmap, dst, src, ebf, BinWidth(ebq, mode), mode, xrand.NewSeeded(11))

			if kept != len(keptVals) {
				t.Fatalf("mode %v n=%d: kept %d, want %d", mode, n, kept, len(keptVals))
			}
			for i := range refBitmap {
				if bitmap[i] != refBitmap[i] {
					t.Fatalf("mode %v n=%d: bitmap byte %d: %08b, want %08b", mode, n, i, bitmap[i], refBitmap[i])
				}
			}
			var wantMax uint32
			for i, c := range refCodes {
				z := ZigZag(c)
				if z > wantMax {
					wantMax = z
				}
				if dst[i] != z {
					t.Fatalf("mode %v n=%d: kept code %d: fused %d, multi-pass %d", mode, n, i, dst[i], z)
				}
			}
			if maxZig != wantMax {
				t.Fatalf("mode %v n=%d: maxZig %d, want %d", mode, n, maxZig, wantMax)
			}
		}
	}
}

// TestPCGKernelsMatchRandVariants proves the devirtualized PCG kernels
// reproduce the *rand.Rand kernels exactly — same bitmap, codes, RNG
// consumption — including on adversarial values straddling the filter
// bound, where the integer-domain magnitude test must agree with the
// float64 comparison bit for bit.
func TestPCGKernelsMatchRandVariants(t *testing.T) {
	for _, ebf := range []float64{4e-3, 1e-6, 0.114137214359, 2} {
		t32 := float32(ebf)
		src := []float32{
			0, float32(math.Copysign(0, -1)), t32, -t32,
			math.Nextafter32(t32, 0), math.Nextafter32(t32, 2*t32),
			-math.Nextafter32(t32, 0), -math.Nextafter32(t32, 2*t32),
			float32(math.Inf(1)), float32(math.Inf(-1)),
			1e-30, -1e-30, 0.5, -0.5, 3,
		}
		// Pad with gradient-like mass so the RNG advances a realistic amount.
		pad := make([]float32, 777)
		xrand.KFACGradient(xrand.NewSeeded(int64(ebf*1e6)+2), pad, 1.0)
		src = append(src, pad...)

		n := len(src)
		binW := BinWidth(4e-3, SR)
		refBitmap := make([]byte, (n+7)/8)
		refDst := make([]uint32, n)
		refKept, refMax := FilterQuantizeZig(refBitmap, refDst, src, ebf, binW, SR, xrand.NewSeeded(31))
		bitmap := make([]byte, (n+7)/8)
		dst := make([]uint32, n)
		kept, maxZig := FilterQuantizeZigPCG(bitmap, dst, src, ebf, binW, xrand.NewPCG(31))
		if kept != refKept || maxZig != refMax {
			t.Fatalf("ebf=%g: kept/max %d/%d, want %d/%d", ebf, kept, maxZig, refKept, refMax)
		}
		for i := range refBitmap {
			if bitmap[i] != refBitmap[i] {
				t.Fatalf("ebf=%g: bitmap byte %d: %08b, want %08b", ebf, i, bitmap[i], refBitmap[i])
			}
		}
		for i := 0; i < kept; i++ {
			if dst[i] != refDst[i] {
				t.Fatalf("ebf=%g: code %d: PCG %d, rand %d", ebf, i, dst[i], refDst[i])
			}
		}

		refMax = QuantizeZigInto(refDst, src, binW, SR, xrand.NewSeeded(47))
		maxZig = QuantizeZigIntoPCG(dst, src, binW, xrand.NewPCG(47))
		if maxZig != refMax {
			t.Fatalf("ebf=%g: dense maxZig %d, want %d", ebf, maxZig, refMax)
		}
		for i := range refDst {
			if dst[i] != refDst[i] {
				t.Fatalf("ebf=%g: dense code %d: PCG %d, rand %d", ebf, i, dst[i], refDst[i])
			}
		}
	}
}

func abs64(v float32) float64 {
	f := float64(v)
	if f < 0 {
		return -f
	}
	return f
}

func TestPlaneCountAndFillPlane(t *testing.T) {
	codes := []int32{0, -1, 127, -128, 300, -70000}
	zigs := make([]uint32, len(codes))
	var maxZig uint32
	for i, c := range codes {
		zigs[i] = ZigZag(c)
		if zigs[i] > maxZig {
			maxZig = zigs[i]
		}
	}
	planes := PlaneSplit(codes)
	if got := PlaneCount(maxZig); got != len(planes) {
		t.Fatalf("PlaneCount %d, PlaneSplit %d", got, len(planes))
	}
	for p := range planes {
		dst := make([]byte, len(codes))
		FillPlane(dst, zigs, p)
		for i := range dst {
			if dst[i] != planes[p][i] {
				t.Fatalf("plane %d byte %d: %d want %d", p, i, dst[i], planes[p][i])
			}
		}
	}
}

func TestPackZigsMatchesPackCodes(t *testing.T) {
	for _, codes := range [][]int32{nil, {0, 0, 0}, {1, -2, 300, -70000, 0}} {
		zigs := make([]uint32, len(codes))
		var maxZig uint32
		for i, c := range codes {
			zigs[i] = ZigZag(c)
			if zigs[i] > maxZig {
				maxZig = zigs[i]
			}
		}
		want := PackCodes(codes)
		got := PackZigs(make([]byte, 64), zigs, maxZig)
		if len(got) != len(want) {
			t.Fatalf("len %d want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("byte %d: %d want %d", i, got[i], want[i])
			}
		}
	}
}

func TestDequantizeZigMatchesDequantizeEB(t *testing.T) {
	codes := []int32{0, 1, -1, 100, -100, 1 << 20}
	for _, mode := range []Mode{RN, SR} {
		eb := 1e-2
		ref := DequantizeEB(codes, eb, mode)
		for i, c := range codes {
			if got := DequantizeZig(ZigZag(c), BinWidth(eb, mode)); got != ref[i] {
				t.Fatalf("mode %v code %d: %g want %g", mode, c, got, ref[i])
			}
		}
	}
}
