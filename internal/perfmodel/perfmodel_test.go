package perfmodel

import (
	"math"
	"testing"

	"compso/internal/cluster"
)

func table(t *testing.T, cfg cluster.Config) *LookupTable {
	t.Helper()
	lt, err := BuildLookupTable(cfg, []int{4, 8, 16, 32, 64, 128, 256})
	if err != nil {
		t.Fatal(err)
	}
	return lt
}

func goodProfile() OnlineProfile {
	return OnlineProfile{CompressionRatio: 20, CompressBps: 50e9, DecompressBps: 50e9, CommRatio: 0.35}
}

func TestBuildLookupTableErrors(t *testing.T) {
	if _, err := BuildLookupTable(cluster.Config{}, []int{8}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := BuildLookupTable(cluster.Platform1(), nil); err == nil {
		t.Fatal("empty GPU counts accepted")
	}
}

func TestThroughputMonotoneInSize(t *testing.T) {
	// Bigger messages amortize latency: effective throughput rises with
	// size, as real all-gather micro-benchmarks show.
	lt := table(t, cluster.Platform1())
	prev := 0.0
	for _, sz := range []int{1 << 12, 1 << 16, 1 << 20, 1 << 24} {
		cur := lt.Throughput(sz, 32)
		if cur < prev {
			t.Fatalf("throughput dropped at %d bytes: %g -> %g", sz, prev, cur)
		}
		prev = cur
	}
}

func TestThroughputInterpolatesAndClamps(t *testing.T) {
	lt := table(t, cluster.Platform1())
	mid := lt.Throughput(6<<10, 32) // 6 KB: between the 4K and 8K buckets
	lo := lt.Throughput(1<<12, 32)
	hi := lt.Throughput(1<<13, 32)
	if mid < lo || mid > hi {
		t.Fatalf("interpolated %g outside [%g, %g]", mid, lo, hi)
	}
	if lt.Throughput(1, 32) != lt.Throughput(1<<10, 32) {
		t.Fatal("small sizes should clamp to the first bucket")
	}
	if lt.Throughput(1<<30, 32) != lt.Throughput(1<<28, 32) {
		t.Fatal("large sizes should clamp to the last bucket")
	}
}

func TestSingleGPUFreeComm(t *testing.T) {
	lt := table(t, cluster.Platform1())
	s, err := lt.CommSpeedup([]int{1 << 20}, 4, 1, goodProfile())
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("speedup %g", s)
	}
	_ = math.Inf // silence linters if unused elsewhere
}

func TestCommSpeedupReflectsCompressionRatio(t *testing.T) {
	lt := table(t, cluster.Platform1())
	layers := []int{4 << 20, 2 << 20, 8 << 20, 1 << 20}
	low := goodProfile()
	low.CompressionRatio = 5
	high := goodProfile()
	high.CompressionRatio = 22
	sLow, err := lt.CommSpeedup(layers, 64, 4, low)
	if err != nil {
		t.Fatal(err)
	}
	sHigh, err := lt.CommSpeedup(layers, 64, 4, high)
	if err != nil {
		t.Fatal(err)
	}
	if sHigh <= sLow {
		t.Fatalf("higher CR gave lower speedup: %g vs %g", sHigh, sLow)
	}
	if sHigh < 2 {
		t.Fatalf("CR 22 speedup only %g", sHigh)
	}
}

func TestSlowCompressorKillsSpeedup(t *testing.T) {
	// The whole reason the paper needs GPU optimizations: a slow compressor
	// can erase the communication win. On the fast intra-node domain
	// (4 GPUs over NVLink) a 100 MB/s compressor must lose outright.
	lt := table(t, cluster.Platform1())
	layers := []int{4 << 20}
	slow := goodProfile()
	slow.CompressBps = 100e6 // 100 MB/s
	slow.DecompressBps = 100e6
	s, err := lt.CommSpeedup(layers, 4, 1, slow)
	if err != nil {
		t.Fatal(err)
	}
	if s >= 1 {
		t.Fatalf("slow compressor still 'sped up' comm: %g", s)
	}
}

func TestSlowerNetworkBenefitsMore(t *testing.T) {
	// §5.2: "With a slower network (e.g., Slingshot 10), the speedup is
	// greater than with a faster network (Slingshot 11)."
	layers := []int{8 << 20, 8 << 20}
	p1 := table(t, cluster.Platform1())
	p2 := table(t, cluster.Platform2())
	s1, err := p1.CommSpeedup(layers, 64, 4, goodProfile())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p2.CommSpeedup(layers, 64, 4, goodProfile())
	if err != nil {
		t.Fatal(err)
	}
	if s1 <= s2 {
		t.Fatalf("Slingshot-10 speedup %g <= Slingshot-11 %g", s1, s2)
	}
}

func TestEndToEnd(t *testing.T) {
	// The paper's own example: r = 50%, s = 10x → 1.8x end-to-end.
	if got := EndToEnd(0.5, 10); math.Abs(got-1.0/(0.5+0.05)) > 1e-12 {
		t.Fatalf("EndToEnd(0.5, 10) = %g", got)
	}
	if got := EndToEnd(0.5, 10); math.Abs(got-1.818181818) > 1e-6 {
		t.Fatalf("EndToEnd = %g, want ~1.82", got)
	}
	if EndToEnd(0.3, 0) != 0 {
		t.Fatal("zero speedup should project 0")
	}
}

func TestBestAggregationPrefersGroupingSmallLayers(t *testing.T) {
	// Many small layers underutilize the network (latency-bound);
	// aggregation must help.
	lt := table(t, cluster.Platform1())
	layers := make([]int, 50)
	for i := range layers {
		layers[i] = 24 << 10 // 24 KB layers: latency-dominated
	}
	m, gain, err := lt.BestAggregation(layers, 64, goodProfile())
	if err != nil {
		t.Fatal(err)
	}
	if m < 2 {
		t.Fatalf("best aggregation %d, want >= 2 for tiny layers", m)
	}
	if gain <= 1 {
		t.Fatalf("projected gain %g <= 1", gain)
	}
	s1, err := lt.CommSpeedup(layers, 64, 1, goodProfile())
	if err != nil {
		t.Fatal(err)
	}
	sM, err := lt.CommSpeedup(layers, 64, m, goodProfile())
	if err != nil {
		t.Fatal(err)
	}
	if sM <= s1 {
		t.Fatalf("aggregation did not improve comm speedup: %g vs %g", sM, s1)
	}
}

func TestCommSpeedupValidation(t *testing.T) {
	lt := table(t, cluster.Platform1())
	if _, err := lt.CommSpeedup([]int{1}, 8, 0, goodProfile()); err == nil {
		t.Fatal("m=0 accepted")
	}
	bad := goodProfile()
	bad.CompressionRatio = 0.5
	if _, err := lt.CommSpeedup([]int{1}, 8, 1, bad); err == nil {
		t.Fatal("CR < 1 accepted")
	}
	bad = goodProfile()
	bad.CommRatio = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("comm ratio > 1 accepted")
	}
	if s, err := lt.CommSpeedup(nil, 8, 1, goodProfile()); err != nil || s != 1 {
		t.Fatalf("empty layers: s=%g err=%v", s, err)
	}
}

func TestSelectEncoderBalancesRatioAndSpeed(t *testing.T) {
	// An encoder with a great ratio but terrible throughput must lose to a
	// balanced one — Table 2's argument for ANS over Zstd/Deflate.
	lt := table(t, cluster.Platform1())
	layers := []int{8 << 20, 8 << 20, 8 << 20}
	ms := []EncoderMeasurement{
		{Name: "Zstd", CompressionRatio: 23.8, CompressBps: 0.27e9, DecompressBps: 0.76e9},
		{Name: "ANS", CompressionRatio: 22.0, CompressBps: 43e9, DecompressBps: 93e9},
		{Name: "Bitcomp", CompressionRatio: 14.0, CompressBps: 108e9, DecompressBps: 34e9},
	}
	got, err := lt.SelectEncoder(layers, 64, 4, 0.35, ms)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "ANS" {
		t.Fatalf("selected %s, want ANS", got.Name)
	}
	if _, err := lt.SelectEncoder(layers, 64, 4, 0.35, nil); err == nil {
		t.Fatal("empty measurement set accepted")
	}
}

func TestBuildLookupTableSimMatchesEngine(t *testing.T) {
	// The simulated table must be well-formed (positive, size-monotone
	// throughput at fixed GPU count) and must reflect the autotuner's
	// choices: large inter-node all-gathers ride the hierarchical schedule,
	// which charges fewer NIC crossings than the closed-form flat ring, so
	// the simulated throughput should be at least competitive with the
	// analytic table at big sizes.
	cfg := cluster.Platform1()
	sim, err := BuildLookupTableSim(cfg, []int{4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := BuildLookupTable(cfg, []int{4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, sz := range []int{1 << 12, 1 << 16, 1 << 20, 1 << 24} {
		cur := sim.Throughput(sz, 64)
		if cur <= 0 || math.IsInf(cur, 1) {
			t.Fatalf("sim throughput at %d bytes = %g", sz, cur)
		}
		if cur < prev {
			t.Fatalf("sim throughput dropped at %d bytes: %g -> %g", sz, prev, cur)
		}
		prev = cur
	}
	big := 1 << 24
	if sim.Throughput(big, 64) < 0.5*ana.Throughput(big, 64) {
		t.Fatalf("sim table far below analytic at %d bytes: %g vs %g",
			big, sim.Throughput(big, 64), ana.Throughput(big, 64))
	}
	if _, err := BuildLookupTableSim(cluster.Config{}, []int{8}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := BuildLookupTableSim(cfg, nil); err == nil {
		t.Fatal("empty GPU counts accepted")
	}
}
