// Package perfmodel implements the paper's performance model (§4.4): an
// offline lookup table mapping (message size, GPU count) to communication
// throughput on each platform, the Eq. 5 communication-speedup estimate
// combining compression ratio with (de)compression overhead, the end-to-end
// speedup projection ((1−r) + r/s)⁻¹, and the two decisions the model
// drives — the layer-aggregation factor m and the lossless encoder choice.
//
// The paper builds the lookup table from offline micro-benchmarks on each
// system; here it is generated from the cluster cost model, which plays the
// role of those measurements. The online half (compressed sizes and
// compressor throughput from the first k warmup iterations) comes from real
// compression of real gradient data in the experiments.
package perfmodel

import (
	"fmt"
	"math"
	"sort"

	"compso/internal/cluster"
)

// LookupTable is the offline (message size × GPU count) → all-gather
// throughput table for one platform. Queries interpolate between the
// benchmarked sizes on a log scale, exactly like querying a measured table.
type LookupTable struct {
	cfg    cluster.Config
	sizes  []int // ascending message sizes in bytes
	counts []int // ascending GPU counts
	// tput[ci][si] is effective all-gather throughput (bytes/s of own-chunk
	// payload) for counts[ci], sizes[si].
	tput [][]float64
}

// BuildLookupTable benchmarks the platform's all-gather across the given
// GPU counts and a geometric ladder of message sizes.
func BuildLookupTable(cfg cluster.Config, gpuCounts []int) (*LookupTable, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(gpuCounts) == 0 {
		return nil, fmt.Errorf("perfmodel: no GPU counts")
	}
	counts := append([]int(nil), gpuCounts...)
	sort.Ints(counts)
	var sizes []int
	for s := 1 << 10; s <= 1<<28; s <<= 1 { // 1 KB .. 256 MB
		sizes = append(sizes, s)
	}
	t := &LookupTable{cfg: cfg, sizes: sizes, counts: counts}
	for _, p := range counts {
		row := make([]float64, len(sizes))
		for i, sz := range sizes {
			sec := cfg.AllGatherTime(sz, p)
			if sec <= 0 {
				// Single GPU: communication is free; use an effectively
				// infinite throughput stand-in.
				row[i] = math.Inf(1)
				continue
			}
			row[i] = float64(sz) / sec
		}
		t.tput = append(t.tput, row)
	}
	return t, nil
}

// BuildLookupTableSim builds the same table from the step-level collective
// engine instead of the closed-form α–β model: each (size, GPU count) cell
// is the autotuner's predicted all-gather time on the simulated topology,
// so the table reflects the algorithm the engine would actually dispatch
// (hierarchical inter-node, ring intra-node, …) including per-link
// contention. This is the closest stand-in for the paper's offline
// micro-benchmarks, which likewise measure whatever schedule the real
// library picks.
func BuildLookupTableSim(cfg cluster.Config, gpuCounts []int) (*LookupTable, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(gpuCounts) == 0 {
		return nil, fmt.Errorf("perfmodel: no GPU counts")
	}
	counts := append([]int(nil), gpuCounts...)
	sort.Ints(counts)
	var sizes []int
	for s := 1 << 10; s <= 1<<28; s <<= 1 { // 1 KB .. 256 MB
		sizes = append(sizes, s)
	}
	t := &LookupTable{cfg: cfg, sizes: sizes, counts: counts}
	for _, p := range counts {
		eng := cluster.EngineFor(cfg, p)
		row := make([]float64, len(sizes))
		for i, sz := range sizes {
			_, sec := eng.PredictAllGather(sz)
			if sec <= 0 {
				row[i] = math.Inf(1)
				continue
			}
			row[i] = float64(sz) / sec
		}
		t.tput = append(t.tput, row)
	}
	return t, nil
}

// Throughput returns the interpolated all-gather throughput (bytes/s of
// per-worker chunk) for a message of the given size across p GPUs. Sizes
// and counts outside the table clamp to its edges.
func (t *LookupTable) Throughput(sizeBytes, p int) float64 {
	ci := t.nearestCountIndex(p)
	row := t.tput[ci]
	if sizeBytes <= t.sizes[0] {
		return row[0]
	}
	last := len(t.sizes) - 1
	if sizeBytes >= t.sizes[last] {
		return row[last]
	}
	hi := sort.SearchInts(t.sizes, sizeBytes)
	lo := hi - 1
	// Log-linear interpolation between bucket endpoints.
	f := (math.Log(float64(sizeBytes)) - math.Log(float64(t.sizes[lo]))) /
		(math.Log(float64(t.sizes[hi])) - math.Log(float64(t.sizes[lo])))
	return row[lo]*(1-f) + row[hi]*f
}

func (t *LookupTable) nearestCountIndex(p int) int {
	best, bestDiff := 0, math.MaxInt
	for i, c := range t.counts {
		d := c - p
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return best
}

// Config returns the platform the table was built for.
func (t *LookupTable) Config() cluster.Config { return t.cfg }

// OnlineProfile holds the quantities measured during the first k warmup
// iterations (§4.4): compressed fraction and compressor throughputs on
// real K-FAC gradients, plus the communication-to-iteration-time ratio.
type OnlineProfile struct {
	// CompressionRatio is Lo/Lc measured on real gradient data.
	CompressionRatio float64
	// CompressBps and DecompressBps are the compressor's throughput in
	// input bytes per second.
	CompressBps   float64
	DecompressBps float64
	// CommRatio is r: the fraction of iteration time spent communicating
	// without compression.
	CommRatio float64
}

// Validate reports profile errors.
func (p OnlineProfile) Validate() error {
	if p.CompressionRatio < 1 || p.CompressBps <= 0 || p.DecompressBps <= 0 {
		return fmt.Errorf("perfmodel: implausible profile %+v", p)
	}
	if p.CommRatio < 0 || p.CommRatio > 1 {
		return fmt.Errorf("perfmodel: comm ratio %g outside [0,1]", p.CommRatio)
	}
	return nil
}

// CommSpeedup evaluates Eq. 5: the estimated communication speedup when
// layers are aggregated in groups of m, compressed at the profile's ratio
// and throughputs, and all-gathered across p GPUs. layerBytes are the
// per-layer gradient sizes of the layers this worker owns.
func (t *LookupTable) CommSpeedup(layerBytes []int, p, m int, prof OnlineProfile) (float64, error) {
	if m < 1 {
		return 0, fmt.Errorf("perfmodel: aggregation factor %d", m)
	}
	if err := prof.Validate(); err != nil {
		return 0, err
	}
	if len(layerBytes) == 0 {
		return 1, nil
	}
	var tOrig, tComp float64
	for g := 0; g < len(layerBytes); g += m {
		end := min(g+m, len(layerBytes))
		group := 0
		for _, b := range layerBytes[g:end] {
			group += b
		}
		if group == 0 {
			continue
		}
		tOrig += float64(group) / t.Throughput(group, p)
		cBytes := float64(group) / prof.CompressionRatio
		tComp += cBytes/t.Throughput(int(cBytes), p) +
			float64(group)/prof.CompressBps +
			cBytes/prof.DecompressBps
	}
	if tComp == 0 {
		return 1, nil
	}
	return tOrig / tComp, nil
}

// EndToEnd converts a communication speedup s into the projected iteration
// speedup ((1−r) + r/s)⁻¹ for communication fraction r — the paper's
// closing formula in §4.4.
func EndToEnd(r, s float64) float64 {
	if s <= 0 {
		return 0
	}
	return 1 / ((1 - r) + r/s)
}

// AggregationCandidates is the m sweep the model considers.
var AggregationCandidates = []int{1, 2, 4, 8, 16}

// BestAggregation returns the aggregation factor maximizing the projected
// end-to-end speedup — the COMPSO-p policy (COMPSO-f fixes m = 4).
func (t *LookupTable) BestAggregation(layerBytes []int, p int, prof OnlineProfile) (int, float64, error) {
	bestM, bestGain := 1, 0.0
	for _, m := range AggregationCandidates {
		s, err := t.CommSpeedup(layerBytes, p, m, prof)
		if err != nil {
			return 0, 0, err
		}
		gain := EndToEnd(prof.CommRatio, s)
		if gain > bestGain {
			bestM, bestGain = m, gain
		}
	}
	return bestM, bestGain, nil
}

// EncoderMeasurement is one encoder's warmup profiling result on real
// gradient data (§4.4's online half of the offline-online mechanism).
type EncoderMeasurement struct {
	Name string
	// CompressionRatio is the overall pipeline ratio with this encoder.
	CompressionRatio float64
	// CompressBps and DecompressBps are pipeline throughputs with this
	// encoder, in input bytes/second.
	CompressBps   float64
	DecompressBps float64
}

// SelectEncoder picks the encoder maximizing projected end-to-end speedup
// for the given owned-layer sizes: the paper's rule of "smaller Lc and low
// overall compression overhead" made precise by Eq. 5.
func (t *LookupTable) SelectEncoder(layerBytes []int, p, m int, commRatio float64, ms []EncoderMeasurement) (EncoderMeasurement, error) {
	if len(ms) == 0 {
		return EncoderMeasurement{}, fmt.Errorf("perfmodel: no encoder measurements")
	}
	best := ms[0]
	bestGain := -1.0
	for _, e := range ms {
		prof := OnlineProfile{
			CompressionRatio: e.CompressionRatio,
			CompressBps:      e.CompressBps,
			DecompressBps:    e.DecompressBps,
			CommRatio:        commRatio,
		}
		s, err := t.CommSpeedup(layerBytes, p, m, prof)
		if err != nil {
			return EncoderMeasurement{}, fmt.Errorf("perfmodel: encoder %s: %w", e.Name, err)
		}
		if gain := EndToEnd(commRatio, s); gain > bestGain {
			best, bestGain = e, gain
		}
	}
	return best, nil
}
