package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// File persistence. Checkpoints are written atomically (temp file +
// rename) under step-numbered names so LatestPath can recover the newest
// complete checkpoint after a crash — a torn in-progress write never
// shadows a good one.

// FileName returns the canonical file name for a checkpoint at the given
// completed-step count.
func FileName(step int) string { return fmt.Sprintf("ckpt-%010d.ckpt", step) }

// Save encodes the checkpoint and writes it atomically into dir, creating
// the directory if needed. It returns the full path and the encoded size.
func Save(dir string, c *Checkpoint) (string, int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, err
	}
	blob := c.Encode()
	path := filepath.Join(dir, FileName(c.Step))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return "", 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", 0, err
	}
	return path, len(blob), nil
}

// Load reads and decodes a checkpoint file.
func Load(path string) (*Checkpoint, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// LatestPath returns the path of the highest-step checkpoint in dir, or
// "" when the directory holds none.
func LatestPath(dir string) (string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", err
	}
	best, bestStep := "", -1
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		s, ok := stepOf(name)
		if ok && s >= bestStep {
			best, bestStep = filepath.Join(dir, name), s
		}
	}
	return best, nil
}

func stepOf(name string) (int, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".ckpt")
	n, err := strconv.Atoi(mid)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
