// Package ckpt implements the versioned, self-describing, CRC-guarded
// checkpoint format for crash-fault-tolerant training. A checkpoint
// captures the complete training state at a step boundary — model
// parameters, optimizer state (SGD momentum or K-FAC covariances, cached
// decompositions, counters), every stream compressor's Stateful snapshot
// (error-feedback residuals, PowerSGD factors + step parity, COMPSO's
// stochastic-rounding RNG position), per-rank data-RNG stream positions,
// the evaluation log, and the cumulative wire counters — such that a run
// resumed from the checkpoint is bit-identical to one that never stopped.
//
// Wire layout (all integers little-endian):
//
//	magic   8 bytes  "COMPSOCR"
//	version u16      (currently 1)
//	count   u32      number of sections
//	section ×count   u8 name length | name | u64 payload length | payload
//	crc     u32      CRC-32C (Castagnoli) over everything above
//
// The decoder is hardened against adversarial blobs to the same standard
// as the compress PeekElements fix: every length and count is validated
// against the bytes actually remaining before any allocation is sized from
// it, so Decode never panics and never allocates more than a small
// constant factor of len(blob) regardless of what the header claims. The
// typed error taxonomy (ErrBadMagic, ErrVersion, ErrChecksum,
// ErrTruncated) distinguishes the failure classes callers react to
// differently: a foreign file, a format break, bit rot, and a torn write.
package ckpt

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"compso/internal/kfac"
	"compso/internal/tensor"
)

// Version is the current checkpoint format version. Bump it (and
// regenerate the golden files in testdata/) on any encoding change.
const Version = 1

var magic = [8]byte{'C', 'O', 'M', 'P', 'S', 'O', 'C', 'R'}

// Decode error taxonomy.
var (
	// ErrBadMagic: the blob is not a checkpoint at all.
	ErrBadMagic = errors.New("ckpt: bad magic")
	// ErrVersion: a checkpoint, but from an incompatible format version.
	ErrVersion = errors.New("ckpt: unsupported version")
	// ErrChecksum: the CRC trailer does not match the content — bit rot or
	// in-flight corruption.
	ErrChecksum = errors.New("ckpt: checksum mismatch")
	// ErrTruncated: the blob ends before its declared content does — a
	// torn or partial write.
	ErrTruncated = errors.New("ckpt: truncated")
)

// Structural bounds the decoder enforces before trusting any header
// claim.
const (
	maxSections = 1024
	maxName     = 64
	maxString   = 4096
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checkpoint is the complete training state at a step boundary.
type Checkpoint struct {
	// Step is the number of completed training steps; resume starts here.
	Step int
	// Seed, Workers, UseKFAC and Method fingerprint the run configuration
	// the state belongs to; resume validates them against its own config.
	Seed    int64
	Workers int
	UseKFAC bool
	Method  string
	// Controller fingerprints the adaptive-compression controller ("" when
	// none). The Algorithm-1 controller is a pure function of its
	// configuration and the step number, so identity — not live state — is
	// all a resume needs to verify.
	Controller string

	// Params are the model parameters (replica-identical, stored once).
	Params []Param
	// SGDVel is the SGD momentum state in params order (first-order runs).
	SGDVel [][]float64
	// KFAC is the replica-identical K-FAC state (second-order runs), and
	// KFACCaches the owner-local decomposition caches across all ranks.
	KFAC       *kfac.State
	KFACCaches []kfac.LayerCache

	// Ranks is the per-rank stream state, indexed by rank.
	Ranks []RankState

	// Log is rank 0's evaluation history up to Step.
	Log Log

	// Counters are the cumulative observability counters that must rewind
	// on restore so resumed totals match an uninterrupted run (wire bytes,
	// train/steps).
	Counters map[string]float64
}

// Param is one model parameter tensor.
type Param struct {
	Name string
	Rows int
	Cols int
	Data []float64
}

// RankState is one rank's private stream state.
type RankState struct {
	// DataRNG is the rank's data-sampling PCG position (MarshalBinary).
	DataRNG []byte
	// CRSum and CRCount accumulate the rank's compression-ratio average.
	CRSum   float64
	CRCount int
	// Comp is the rank's whole-model compressor stream (nil when the
	// compressor is stateless or the run uses per-layer compressors only).
	Comp *CompState
	// LayerComps are the rank's per-layer compressor streams, sorted by
	// ascending layer index.
	LayerComps []LayerComp
}

// LayerComp is one per-layer compressor stream.
type LayerComp struct {
	Layer int
	State *CompState
}

// Log is the evaluation history.
type Log struct {
	Iterations []int
	Losses     []float64
	Accuracies []float64
	FinalLoss  float64
	FinalAcc   float64
}

// Encode serializes the checkpoint. The output is deterministic: the same
// state always produces the same bytes (counters are sorted by name), so
// golden files and content-addressed storage both work.
func (c *Checkpoint) Encode() []byte {
	var sections []section
	add := func(name string, body []byte) {
		sections = append(sections, section{name: name, body: body})
	}

	add("meta", c.encodeMeta())
	add("model", encodeParams(c.Params))
	if !c.UseKFAC {
		add("sgd", encodeF64Slices(c.SGDVel))
	}
	if c.KFAC != nil {
		add("kfac", encodeKFACState(c.KFAC))
		add("kfaccache", encodeKFACCaches(c.KFACCaches))
	}
	add("ranks", encodeRanks(c.Ranks))
	add("log", c.Log.encode())
	add("counters", encodeCounters(c.Counters))

	e := &enc{}
	e.raw(magic[:])
	e.u16(Version)
	e.u32(uint32(len(sections)))
	for _, s := range sections {
		e.u8(uint8(len(s.name)))
		e.raw([]byte(s.name))
		e.u64(uint64(len(s.body)))
		e.raw(s.body)
	}
	e.u32(crc32.Checksum(e.buf, castagnoli))
	return e.buf
}

type section struct {
	name string
	body []byte
}

// Decode parses a checkpoint blob, validating magic, version, CRC and
// every internal length before sizing any allocation from it.
func Decode(blob []byte) (*Checkpoint, error) {
	n := len(blob)
	if n < len(magic) {
		if matchesPrefix(blob) {
			return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, n)
		}
		return nil, ErrBadMagic
	}
	for i := range magic {
		if blob[i] != magic[i] {
			return nil, ErrBadMagic
		}
	}
	// magic + version + count + crc
	if n < len(magic)+2+4+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, n)
	}
	body, trailer := blob[:n-4], blob[n-4:]
	want := uint32(trailer[0]) | uint32(trailer[1])<<8 | uint32(trailer[2])<<16 | uint32(trailer[3])<<24
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("%w: computed %08x, stored %08x", ErrChecksum, got, want)
	}
	d := &dec{data: body, pos: len(magic)}
	ver := d.u16()
	if d.err != nil {
		return nil, d.err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: checkpoint version %d, this build reads %d", ErrVersion, ver, Version)
	}
	count := d.u32()
	if d.err != nil {
		return nil, d.err
	}
	if count > maxSections {
		return nil, fmt.Errorf("ckpt: %d sections exceeds bound %d", count, maxSections)
	}
	c := &Checkpoint{}
	for i := uint32(0); i < count; i++ {
		nameLen := d.u8()
		if d.err != nil {
			return nil, d.err
		}
		if int(nameLen) > maxName {
			return nil, fmt.Errorf("ckpt: section name %d bytes exceeds bound %d", nameLen, maxName)
		}
		name := string(d.bytes(int(nameLen)))
		bodyLen := d.u64()
		if d.err != nil {
			return nil, d.err
		}
		sec := d.sub(bodyLen)
		if d.err != nil {
			return nil, d.err
		}
		if err := c.decodeSection(name, sec); err != nil {
			return nil, err
		}
	}
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after last section", len(d.data)-d.pos)
	}
	return c, nil
}

func matchesPrefix(blob []byte) bool {
	for i := range blob {
		if blob[i] != magic[i] {
			return false
		}
	}
	return true
}

func (c *Checkpoint) decodeSection(name string, d *dec) error {
	var err error
	switch name {
	case "meta":
		err = c.decodeMeta(d)
	case "model":
		c.Params, err = decodeParams(d)
	case "sgd":
		c.SGDVel, err = decodeF64Slices(d)
	case "kfac":
		c.KFAC, err = decodeKFACState(d)
	case "kfaccache":
		c.KFACCaches, err = decodeKFACCaches(d)
	case "ranks":
		c.Ranks, err = decodeRanks(d)
	case "log":
		err = c.Log.decode(d)
	case "counters":
		c.Counters, err = decodeCounters(d)
	default:
		return fmt.Errorf("ckpt: unknown section %q", name)
	}
	if err != nil {
		return err
	}
	if d.err != nil {
		return d.err
	}
	if d.pos != len(d.data) {
		return fmt.Errorf("ckpt: section %q has %d trailing bytes", name, len(d.data)-d.pos)
	}
	return nil
}

// --- meta ---

func (c *Checkpoint) encodeMeta() []byte {
	e := &enc{}
	e.u64(uint64(c.Step))
	e.u64(uint64(c.Seed))
	e.u32(uint32(c.Workers))
	e.bool(c.UseKFAC)
	e.str(c.Method)
	e.str(c.Controller)
	return e.buf
}

func (c *Checkpoint) decodeMeta(d *dec) error {
	c.Step = int(d.u64())
	c.Seed = int64(d.u64())
	c.Workers = int(d.u32())
	c.UseKFAC = d.bool()
	c.Method = d.str()
	c.Controller = d.str()
	if d.err == nil && (c.Step < 0 || c.Workers < 0) {
		return fmt.Errorf("ckpt: negative step %d or workers %d", c.Step, c.Workers)
	}
	return d.err
}

// --- model ---

func encodeParams(ps []Param) []byte {
	e := &enc{}
	e.u32(uint32(len(ps)))
	for _, p := range ps {
		e.str(p.Name)
		e.u32(uint32(p.Rows))
		e.u32(uint32(p.Cols))
		e.f64s(p.Data)
	}
	return e.buf
}

func decodeParams(d *dec) ([]Param, error) {
	n := d.count(4)
	if d.err != nil {
		return nil, d.err
	}
	if n == 0 {
		return nil, nil
	}
	ps := make([]Param, 0, n)
	for i := 0; i < n; i++ {
		var p Param
		p.Name = d.str()
		p.Rows = int(d.u32())
		p.Cols = int(d.u32())
		p.Data = d.f64s()
		if d.err != nil {
			return nil, d.err
		}
		if p.Rows < 0 || p.Cols < 0 || p.Rows*p.Cols != len(p.Data) {
			return nil, fmt.Errorf("ckpt: param %q shape %dx%d with %d values", p.Name, p.Rows, p.Cols, len(p.Data))
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// --- sgd ---

func encodeF64Slices(vs [][]float64) []byte {
	e := &enc{}
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.optF64s(v)
	}
	return e.buf
}

func decodeF64Slices(d *dec) ([][]float64, error) {
	n := d.count(1)
	if d.err != nil {
		return nil, d.err
	}
	vs := make([][]float64, n)
	for i := 0; i < n; i++ {
		vs[i] = d.optF64s()
	}
	return vs, d.err
}

// --- kfac ---

func encodeKFACState(st *kfac.State) []byte {
	e := &enc{}
	e.u64(uint64(st.Step))
	e.u64(uint64(st.StatVersion))
	e.u32(uint32(len(st.A)))
	for i := range st.A {
		e.matrix(st.A[i])
		e.matrix(st.G[i])
		e.optF64s(st.Vel[i])
	}
	e.u32(uint32(len(st.OtherVel)))
	for _, v := range st.OtherVel {
		e.optF64s(v)
	}
	return e.buf
}

func decodeKFACState(d *dec) (*kfac.State, error) {
	st := &kfac.State{}
	st.Step = int(d.u64())
	st.StatVersion = int(d.u64())
	n := d.count(16)
	if d.err != nil {
		return nil, d.err
	}
	st.A = make([]*tensor.Matrix, n)
	st.G = make([]*tensor.Matrix, n)
	st.Vel = make([][]float64, n)
	for i := 0; i < n; i++ {
		var err error
		if st.A[i], err = d.matrix(); err != nil {
			return nil, err
		}
		if st.G[i], err = d.matrix(); err != nil {
			return nil, err
		}
		st.Vel[i] = d.optF64s()
	}
	m := d.count(1)
	if d.err != nil {
		return nil, d.err
	}
	st.OtherVel = make([][]float64, m)
	for i := 0; i < m; i++ {
		st.OtherVel[i] = d.optF64s()
	}
	return st, d.err
}

func encodeKFACCaches(cs []kfac.LayerCache) []byte {
	e := &enc{}
	e.u32(uint32(len(cs)))
	for _, c := range cs {
		e.u32(uint32(c.Layer))
		e.u64(uint64(c.EigVersion))
		e.optEigen(c.EigA)
		e.optEigen(c.EigG)
		e.u64(uint64(c.InvVersion))
		e.optMatrix(c.InvA)
		e.optMatrix(c.InvG)
	}
	return e.buf
}

func decodeKFACCaches(d *dec) ([]kfac.LayerCache, error) {
	n := d.count(22)
	if d.err != nil {
		return nil, d.err
	}
	if n == 0 {
		return nil, nil
	}
	cs := make([]kfac.LayerCache, 0, n)
	for i := 0; i < n; i++ {
		var c kfac.LayerCache
		var err error
		c.Layer = int(d.u32())
		c.EigVersion = int(d.u64())
		if c.EigA, err = d.optEigen(); err != nil {
			return nil, err
		}
		if c.EigG, err = d.optEigen(); err != nil {
			return nil, err
		}
		c.InvVersion = int(d.u64())
		if c.InvA, err = d.optMatrix(); err != nil {
			return nil, err
		}
		if c.InvG, err = d.optMatrix(); err != nil {
			return nil, err
		}
		if d.err != nil {
			return nil, d.err
		}
		cs = append(cs, c)
	}
	return cs, nil
}

// --- ranks ---

func encodeRanks(rs []RankState) []byte {
	e := &enc{}
	e.u32(uint32(len(rs)))
	for _, r := range rs {
		e.blob(r.DataRNG)
		e.f64(r.CRSum)
		e.u64(uint64(r.CRCount))
		e.optComp(r.Comp)
		e.u32(uint32(len(r.LayerComps)))
		for _, lc := range r.LayerComps {
			e.u32(uint32(lc.Layer))
			e.comp(lc.State)
		}
	}
	return e.buf
}

func decodeRanks(d *dec) ([]RankState, error) {
	n := d.count(26)
	if d.err != nil {
		return nil, d.err
	}
	if n == 0 {
		return nil, nil
	}
	rs := make([]RankState, 0, n)
	for i := 0; i < n; i++ {
		var r RankState
		var err error
		r.DataRNG = d.blob()
		r.CRSum = d.f64()
		r.CRCount = int(d.u64())
		if r.Comp, err = d.optComp(); err != nil {
			return nil, err
		}
		m := d.count(5)
		if d.err != nil {
			return nil, d.err
		}
		for j := 0; j < m; j++ {
			var lc LayerComp
			lc.Layer = int(d.u32())
			if lc.State, err = d.comp(); err != nil {
				return nil, err
			}
			r.LayerComps = append(r.LayerComps, lc)
		}
		if d.err != nil {
			return nil, d.err
		}
		rs = append(rs, r)
	}
	return rs, nil
}

// --- log ---

func (l *Log) encode() []byte {
	e := &enc{}
	e.u32(uint32(len(l.Iterations)))
	for _, it := range l.Iterations {
		e.u64(uint64(it))
	}
	e.f64s(l.Losses)
	e.f64s(l.Accuracies)
	e.f64(l.FinalLoss)
	e.f64(l.FinalAcc)
	return e.buf
}

func (l *Log) decode(d *dec) error {
	n := d.count(8)
	if d.err != nil {
		return d.err
	}
	if n > 0 {
		l.Iterations = make([]int, 0, n)
	}
	for i := 0; i < n; i++ {
		l.Iterations = append(l.Iterations, int(d.u64()))
	}
	l.Losses = d.f64s()
	l.Accuracies = d.f64s()
	l.FinalLoss = d.f64()
	l.FinalAcc = d.f64()
	return d.err
}

// --- counters ---

func encodeCounters(m map[string]float64) []byte {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	e := &enc{}
	e.u32(uint32(len(names)))
	for _, k := range names {
		e.str(k)
		e.f64(m[k])
	}
	return e.buf
}

func decodeCounters(d *dec) (map[string]float64, error) {
	n := d.count(10)
	if d.err != nil {
		return nil, d.err
	}
	m := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		k := d.str()
		v := d.f64()
		if d.err != nil {
			return nil, d.err
		}
		m[k] = v
	}
	return m, nil
}

// --- primitive writers ---

type enc struct{ buf []byte }

func (e *enc) raw(b []byte) { e.buf = append(e.buf, b...) }
func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u16(v uint16) { e.buf = append(e.buf, byte(v), byte(v>>8)) }
func (e *enc) u32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *enc) u64(v uint64) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *enc) str(s string) {
	if len(s) > maxString {
		panic(fmt.Sprintf("ckpt: string %d bytes exceeds bound %d", len(s), maxString))
	}
	e.u16(uint16(len(s)))
	e.raw([]byte(s))
}

func (e *enc) blob(b []byte) {
	e.u64(uint64(len(b)))
	e.raw(b)
}

func (e *enc) f64s(v []float64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

func (e *enc) f32s(v []float32) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u32(math.Float32bits(x))
	}
}

// optF64s writes a nil-able slice: nil and empty are distinct (nil means
// "state not yet allocated", which restore must preserve).
func (e *enc) optF64s(v []float64) {
	if v == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.f64s(v)
}

func (e *enc) optF32s(v []float32) {
	if v == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.f32s(v)
}

func (e *enc) matrix(m *tensor.Matrix) {
	e.u32(uint32(m.Rows))
	e.u32(uint32(m.Cols))
	for _, x := range m.Data {
		e.f64(x)
	}
}

func (e *enc) optMatrix(m *tensor.Matrix) {
	if m == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.matrix(m)
}

func (e *enc) optEigen(eg *tensor.Eigen) {
	if eg == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.f64s(eg.Values)
	e.matrix(eg.Q)
}

// --- primitive readers ---

// dec is a bounds-checked reader over one blob. The first overrun latches
// err (ErrTruncated) and every subsequent read returns zero values, so
// decode paths can batch their error checks.
type dec struct {
	data []byte
	pos  int
	err  error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: need %d bytes past offset %d", ErrTruncated, len(d.data)-d.pos+1, d.pos)
	}
}

func (d *dec) bytes(n int) []byte {
	if d.err != nil || n < 0 || len(d.data)-d.pos < n {
		d.fail()
		return nil
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *dec) u8() uint8 {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u16() uint16 {
	b := d.bytes(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

func (d *dec) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (d *dec) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) bool() bool { return d.u8() != 0 }

// count reads a u32 element count and validates it against the bytes
// remaining at minBytes per element — the allocation guard.
func (d *dec) count(minBytes int) int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if int(n) > (len(d.data)-d.pos)/minBytes+1 {
		d.fail()
		return 0
	}
	return int(n)
}

func (d *dec) str() string {
	n := d.u16()
	if d.err != nil {
		return ""
	}
	if int(n) > maxString {
		d.fail()
		return ""
	}
	return string(d.bytes(int(n)))
}

func (d *dec) blob() []byte {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.data)-d.pos) {
		d.fail()
		return nil
	}
	return append([]byte(nil), d.bytes(int(n))...)
}

// sub carves out the next n bytes as a child reader.
func (d *dec) sub(n uint64) *dec {
	if d.err != nil {
		return &dec{err: d.err}
	}
	if n > uint64(len(d.data)-d.pos) {
		d.fail()
		return &dec{err: d.err}
	}
	b := d.bytes(int(n))
	return &dec{data: b}
}

func (d *dec) f64s() []float64 {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n > uint64(len(d.data)-d.pos)/8 {
		d.fail()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *dec) f32s() []float32 {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n > uint64(len(d.data)-d.pos)/4 {
		d.fail()
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(d.u32())
	}
	return out
}

func (d *dec) optF64s() []float64 {
	if d.u8() == 0 {
		return nil
	}
	v := d.f64s()
	if v == nil && d.err == nil {
		v = []float64{}
	}
	return v
}

func (d *dec) optF32s() []float32 {
	if d.u8() == 0 {
		return nil
	}
	v := d.f32s()
	if v == nil && d.err == nil {
		v = []float32{}
	}
	return v
}

func (d *dec) matrix() (*tensor.Matrix, error) {
	rows := int(d.u32())
	cols := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if rows < 0 || cols < 0 || rows > len(d.data) || cols > len(d.data) ||
		uint64(rows)*uint64(cols) > uint64(len(d.data)-d.pos)/8 {
		d.fail()
		return nil, d.err
	}
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = d.f64()
	}
	if d.err != nil {
		return nil, d.err
	}
	return m, nil
}

func (d *dec) optMatrix() (*tensor.Matrix, error) {
	if d.u8() == 0 {
		return nil, d.err
	}
	return d.matrix()
}

func (d *dec) optEigen() (*tensor.Eigen, error) {
	if d.u8() == 0 {
		return nil, d.err
	}
	vals := d.f64s()
	q, err := d.matrix()
	if err != nil {
		return nil, err
	}
	return &tensor.Eigen{Values: vals, Q: q}, nil
}
