package ckpt

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"compso/internal/compress"
	"compso/internal/kfac"
	"compso/internal/tensor"
	"compso/internal/xrand"
)

// goldenCheckpoint builds a fixed synthetic checkpoint exercising every
// section and every compressor-state kind. Its encoding is committed as
// testdata/golden_v1.ckpt; changing the format without bumping Version
// fails TestGoldenFile with a regeneration hint.
func goldenCheckpoint() *Checkpoint {
	mat := func(rows, cols int, base float64) *tensor.Matrix {
		m := tensor.New(rows, cols)
		for i := range m.Data {
			m.Data[i] = base + float64(i)*0.125
		}
		return m
	}
	pcg := xrand.NewPCG(42)
	rngBytes, _ := pcg.MarshalBinary()
	compso := &CompState{Kind: kindCOMPSO, COMPSO: &compress.COMPSOState{RNG: rngBytes}}
	power := &CompState{Kind: kindPowerSGD, PowerSGD: &compress.PowerSGDState{
		Step: 7, Phase: 1, N: 6, Rows: 3, Cols: 2, Rank: 2,
		P: []float64{1, 2, 3, 4, 5, 6}, Q: []float64{0.5, -0.5, 0.25, -0.25},
	}}
	ef := &CompState{Kind: kindEF, EF: &EFState{
		Expect: 6, Pinned: true, Residual: []float32{0.1, -0.2, 0.3, 0, -0.5, 1},
		Inner: power,
	}}
	return &Checkpoint{
		Step: 12, Seed: 42, Workers: 2, UseKFAC: true,
		Method:     "K-FAC + COMPSO",
		Controller: "compso/stages=3/alpha=0.5",
		Params: []Param{
			{Name: "00-dense/W", Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}},
			{Name: "01-dense/W", Rows: 1, Cols: 2, Data: []float64{-0.5, 0.5}},
		},
		KFAC: &kfac.State{
			Step: 12, StatVersion: 6,
			A:   []*tensor.Matrix{mat(3, 3, 0.5)},
			G:   []*tensor.Matrix{mat(2, 2, -1)},
			Vel: [][]float64{{0.01, 0.02, 0.03, 0.04, 0.05, 0.06}},
			OtherVel: [][]float64{
				nil,
				{0.125, 0.25},
			},
		},
		KFACCaches: []kfac.LayerCache{
			{
				Layer: 0, EigVersion: 6,
				EigA: &tensor.Eigen{Values: []float64{0.1, 0.9, 1.5}, Q: mat(3, 3, 0)},
				EigG: &tensor.Eigen{Values: []float64{0.2, 2.0}, Q: mat(2, 2, 1)},
			},
		},
		Ranks: []RankState{
			{DataRNG: rngBytes, CRSum: 37.5, CRCount: 12, Comp: compso,
				LayerComps: []LayerComp{{Layer: 0, State: ef}, {Layer: 1, State: compso}}},
			{DataRNG: rngBytes, CRSum: 36.25, CRCount: 12, Comp: power},
		},
		Log: Log{
			Iterations: []int{3, 7, 11},
			Losses:     []float64{2.5, 1.75, 1.25},
			Accuracies: []float64{0.25, 0.5, 0.625},
			FinalLoss:  1.25, FinalAcc: 0.625,
		},
		Counters: map[string]float64{
			"wire/grad-allgather/bytes":  123456,
			"wire/kfac-allgather/bytes":  7890,
			"wire/kfac-covariance/bytes": 4096,
			"wire/total/bytes":           135442,
			"train/steps":                12,
		},
	}
}

func TestRoundTrip(t *testing.T) {
	c := goldenCheckpoint()
	blob := c.Encode()
	got, err := Decode(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", c, got)
	}
	// Bit-exact re-encode.
	if !bytes.Equal(blob, got.Encode()) {
		t.Fatal("re-encoded bytes differ from original encoding")
	}
}

func TestRoundTripSGD(t *testing.T) {
	c := &Checkpoint{
		Step: 5, Seed: 7, Workers: 4, Method: "S-SGD + COMPSO",
		Params: []Param{{Name: "w", Rows: 1, Cols: 2, Data: []float64{1, 2}}},
		SGDVel: [][]float64{{0.5, -0.5}, nil},
		Ranks:  make([]RankState, 4),
		Log:    Log{FinalLoss: math.Pi},
		Counters: map[string]float64{
			"train/steps": 5,
		},
	}
	got, err := Decode(c.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", c, got)
	}
	if got.SGDVel[1] != nil {
		t.Fatal("nil velocity entry not preserved")
	}
}

func TestGoldenFile(t *testing.T) {
	path := filepath.Join("testdata", "golden_v1.ckpt")
	blob := goldenCheckpoint().Encode()
	if os.Getenv("CKPT_UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", path, len(blob))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file: %v (regenerate with CKPT_UPDATE_GOLDEN=1 go test ./internal/ckpt)", err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("checkpoint encoding changed but Version is still %d — bump ckpt.Version and regenerate the golden files with CKPT_UPDATE_GOLDEN=1 go test ./internal/ckpt", Version)
	}
	got, err := Decode(want)
	if err != nil {
		t.Fatalf("decoding golden file: %v", err)
	}
	if !reflect.DeepEqual(goldenCheckpoint(), got) {
		t.Fatal("golden file decodes to a different checkpoint")
	}
}

func TestDecodeErrorTaxonomy(t *testing.T) {
	blob := goldenCheckpoint().Encode()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), blob...)
		b[0] = 'X'
		if _, err := Decode(b); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
		if _, err := Decode([]byte("nope")); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("short foreign blob: got %v, want ErrBadMagic", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 3, len(magic), len(magic) + 5, len(blob) / 2, len(blob) - 1} {
			b := blob[:n]
			_, err := Decode(b)
			if err == nil {
				t.Fatalf("truncation to %d bytes decoded successfully", n)
			}
			// Cutting the blob may surface as truncation or (because the
			// trailer moved) a checksum mismatch; both are acceptable, a
			// panic or success is not.
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("truncation to %d: got %v", n, err)
			}
		}
		// A truncated prefix of the magic itself is a torn write.
		if _, err := Decode([]byte("COMP")); !errors.Is(err, ErrTruncated) {
			t.Fatalf("magic prefix: got %v, want ErrTruncated", err)
		}
	})

	t.Run("version", func(t *testing.T) {
		b := append([]byte(nil), blob...)
		b[8] = 0xfe // bump version field
		b = fixCRC(b)
		if _, err := Decode(b); !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})

	t.Run("checksum", func(t *testing.T) {
		b := append([]byte(nil), blob...)
		b[len(b)/2] ^= 0x40
		if _, err := Decode(b); !errors.Is(err, ErrChecksum) {
			t.Fatalf("got %v, want ErrChecksum", err)
		}
	})
}

// fixCRC rewrites the trailer CRC so content mutations surface their own
// error class instead of ErrChecksum.
func fixCRC(b []byte) []byte {
	c := crc32.Checksum(b[:len(b)-4], castagnoli)
	b[len(b)-4] = byte(c)
	b[len(b)-3] = byte(c >> 8)
	b[len(b)-2] = byte(c >> 16)
	b[len(b)-1] = byte(c >> 24)
	return b
}

func TestSaveLoadLatest(t *testing.T) {
	dir := t.TempDir()
	c := goldenCheckpoint()
	for _, step := range []int{4, 8, 12} {
		cc := *c
		cc.Step = step
		path, n, err := Save(dir, &cc)
		if err != nil {
			t.Fatalf("save step %d: %v", step, err)
		}
		if n <= 0 {
			t.Fatal("zero-byte checkpoint")
		}
		if filepath.Base(path) != FileName(step) {
			t.Fatalf("path %s, want base %s", path, FileName(step))
		}
	}
	// A torn temp file must not shadow a complete checkpoint.
	if err := os.WriteFile(filepath.Join(dir, FileName(16)+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	latest, err := LatestPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(latest) != FileName(12) {
		t.Fatalf("latest %s, want %s", latest, FileName(12))
	}
	got, err := Load(latest)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 12 {
		t.Fatalf("loaded step %d, want 12", got.Step)
	}
	// Empty/missing dirs report no checkpoint, not an error.
	if p, err := LatestPath(filepath.Join(dir, "missing")); err != nil || p != "" {
		t.Fatalf("missing dir: %q, %v", p, err)
	}
}

func TestCompStateConversion(t *testing.T) {
	// Live compressors → snapshot → serializable tree → snapshot →
	// restored compressors, asserting the restored stream continues
	// bit-identically.
	inner := compress.NewPowerSGD(2, 1)
	ef := compress.NewErrorFeedback(inner)
	src := []float32{1, -2, 3, -4, 5, -6}
	if _, err := ef.Compress(src); err != nil {
		t.Fatal(err)
	}
	cs, err := CaptureCompressor(ef)
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip the tree through bytes inside a minimal checkpoint.
	c := &Checkpoint{Ranks: []RankState{{Comp: cs}}, Counters: map[string]float64{}}
	dec, err := Decode(c.Encode())
	if err != nil {
		t.Fatal(err)
	}

	ef2 := compress.NewErrorFeedback(compress.NewPowerSGD(2, 1))
	if err := RestoreCompressor(ef2, dec.Ranks[0].Comp); err != nil {
		t.Fatal(err)
	}
	b1, err := ef.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ef2.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("restored EF+PowerSGD stream diverged from the original")
	}
}

func TestCaptureRejectsNonRestorableState(t *testing.T) {
	// A Stateful-but-not-Restorable compressor must fail capture loudly.
	if _, err := CaptureCompressor(statefulOnly{}); err == nil {
		t.Fatal("capture of a non-Restorable stateful compressor succeeded")
	}
}

type statefulOnly struct{}

func (statefulOnly) Name() string                              { return "stateful-only" }
func (statefulOnly) Compress(src []float32) ([]byte, error)    { return nil, nil }
func (statefulOnly) Decompress(data []byte) ([]float32, error) { return nil, nil }
func (statefulOnly) Reset()                                    {}
func (statefulOnly) State() any                                { return struct{}{} }
