package ckpt

import (
	"fmt"

	"compso/internal/compress"
)

// CompState is the serializable form of a compressor's Stateful snapshot —
// a tagged tree mirroring the cascading wrapper structure (an
// error-feedback node carries its inner compressor's state recursively).
type CompState struct {
	Kind     uint8
	COMPSO   *compress.COMPSOState
	EF       *EFState
	PowerSGD *compress.PowerSGDState
}

// EFState is the serializable error-feedback node.
type EFState struct {
	Expect   int
	Pinned   bool
	Residual []float32
	Inner    *CompState
}

// CompState kinds.
const (
	kindCOMPSO   = 1
	kindEF       = 2
	kindPowerSGD = 3
)

// maxCompDepth bounds the wrapper-cascade nesting a blob may declare.
const maxCompDepth = 8

// CompStateOf converts a Stateful.State() snapshot into its serializable
// form. It understands every Stateful implementation in the compress
// package; an unknown snapshot type is an error (silently dropping state
// would break the resume bit-identity contract).
func CompStateOf(s any) (*CompState, error) {
	switch st := s.(type) {
	case compress.COMPSOState:
		return &CompState{Kind: kindCOMPSO, COMPSO: &st}, nil
	case compress.PowerSGDState:
		return &CompState{Kind: kindPowerSGD, PowerSGD: &st}, nil
	case compress.ErrorFeedbackState:
		ef := &EFState{Expect: st.Expect, Pinned: st.Pinned, Residual: st.Residual}
		if st.Inner != nil {
			inner, err := CompStateOf(st.Inner)
			if err != nil {
				return nil, err
			}
			ef.Inner = inner
		}
		return &CompState{Kind: kindEF, EF: ef}, nil
	}
	return nil, fmt.Errorf("ckpt: unsupported compressor snapshot type %T", s)
}

// Value converts back to the compress-typed snapshot that
// Restorable.Restore accepts.
func (cs *CompState) Value() (any, error) {
	if cs == nil {
		return nil, fmt.Errorf("ckpt: nil compressor state")
	}
	switch cs.Kind {
	case kindCOMPSO:
		if cs.COMPSO == nil {
			return nil, fmt.Errorf("ckpt: COMPSO state node without payload")
		}
		return *cs.COMPSO, nil
	case kindPowerSGD:
		if cs.PowerSGD == nil {
			return nil, fmt.Errorf("ckpt: PowerSGD state node without payload")
		}
		return *cs.PowerSGD, nil
	case kindEF:
		if cs.EF == nil {
			return nil, fmt.Errorf("ckpt: EF state node without payload")
		}
		st := compress.ErrorFeedbackState{
			Expect:   cs.EF.Expect,
			Pinned:   cs.EF.Pinned,
			Residual: cs.EF.Residual,
		}
		if cs.EF.Inner != nil {
			inner, err := cs.EF.Inner.Value()
			if err != nil {
				return nil, err
			}
			st.Inner = inner
		}
		return st, nil
	}
	return nil, fmt.Errorf("ckpt: unknown compressor state kind %d", cs.Kind)
}

// comp writes a CompState tree.
func (e *enc) comp(cs *CompState) {
	if cs == nil {
		e.u8(0)
		return
	}
	e.u8(cs.Kind)
	switch cs.Kind {
	case kindCOMPSO:
		e.blob(cs.COMPSO.RNG)
	case kindPowerSGD:
		p := cs.PowerSGD
		e.u64(uint64(p.Step))
		e.u64(uint64(p.Phase))
		e.u64(uint64(p.N))
		e.u64(uint64(p.Rows))
		e.u64(uint64(p.Cols))
		e.u64(uint64(p.Rank))
		e.optF64s(p.P)
		e.optF64s(p.Q)
	case kindEF:
		f := cs.EF
		e.u64(uint64(f.Expect))
		e.bool(f.Pinned)
		e.optF32s(f.Residual)
		e.comp(f.Inner)
	default:
		panic(fmt.Sprintf("ckpt: encoding unknown compressor state kind %d", cs.Kind))
	}
}

func (e *enc) optComp(cs *CompState) { e.comp(cs) }

// comp reads a CompState tree (depth-bounded).
func (d *dec) comp() (*CompState, error) { return d.compDepth(0) }

func (d *dec) optComp() (*CompState, error) { return d.compDepth(0) }

func (d *dec) compDepth(depth int) (*CompState, error) {
	if depth > maxCompDepth {
		return nil, fmt.Errorf("ckpt: compressor state nested deeper than %d", maxCompDepth)
	}
	kind := d.u8()
	if d.err != nil {
		return nil, d.err
	}
	switch kind {
	case 0:
		return nil, nil
	case kindCOMPSO:
		rng := d.blob()
		if d.err != nil {
			return nil, d.err
		}
		return &CompState{Kind: kindCOMPSO, COMPSO: &compress.COMPSOState{RNG: rng}}, nil
	case kindPowerSGD:
		p := &compress.PowerSGDState{}
		p.Step = int(d.u64())
		p.Phase = int(d.u64())
		p.N = int(d.u64())
		p.Rows = int(d.u64())
		p.Cols = int(d.u64())
		p.Rank = int(d.u64())
		p.P = d.optF64s()
		p.Q = d.optF64s()
		if d.err != nil {
			return nil, d.err
		}
		return &CompState{Kind: kindPowerSGD, PowerSGD: p}, nil
	case kindEF:
		f := &EFState{}
		f.Expect = int(d.u64())
		f.Pinned = d.bool()
		f.Residual = d.optF32s()
		inner, err := d.compDepth(depth + 1)
		if err != nil {
			return nil, err
		}
		f.Inner = inner
		if d.err != nil {
			return nil, d.err
		}
		return &CompState{Kind: kindEF, EF: f}, nil
	}
	return nil, fmt.Errorf("ckpt: unknown compressor state kind %d", kind)
}

// CaptureCompressor snapshots a live compressor into serializable form:
// nil for stateless compressors, an error for Stateful ones that are not
// Restorable (their state would be silently lost on resume).
func CaptureCompressor(c compress.Compressor) (*CompState, error) {
	st, ok := c.(compress.Stateful)
	if !ok {
		return nil, nil
	}
	if _, ok := c.(compress.Restorable); !ok {
		return nil, fmt.Errorf("ckpt: compressor %s is Stateful but not Restorable — its stream cannot survive a resume", c.Name())
	}
	return CompStateOf(st.State())
}

// RestoreCompressor installs a captured snapshot into a live compressor. A
// nil snapshot requires a stateless compressor.
func RestoreCompressor(c compress.Compressor, cs *CompState) error {
	if cs == nil {
		if _, ok := c.(compress.Stateful); ok {
			return fmt.Errorf("ckpt: checkpoint has no stream state for stateful compressor %s", c.Name())
		}
		return nil
	}
	r, ok := c.(compress.Restorable)
	if !ok {
		return fmt.Errorf("ckpt: checkpoint carries stream state but compressor %s is not Restorable", c.Name())
	}
	v, err := cs.Value()
	if err != nil {
		return err
	}
	return r.Restore(v)
}
