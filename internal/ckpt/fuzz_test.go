package ckpt

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode asserts Decode never panics and never trusts a
// header claim it has not validated against the bytes actually present —
// the same hardening standard as the compress PeekElements fix. The seed
// corpus covers the golden blob plus the adversarial classes the error
// taxonomy distinguishes: truncations, bit flips, and version bumps.
func FuzzCheckpointDecode(f *testing.F) {
	blob := goldenCheckpoint().Encode()
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte("not a checkpoint"))
	f.Add([]byte("COMP"))
	for _, n := range []int{len(magic), len(magic) + 6, len(blob) / 3, len(blob) / 2, len(blob) - 1} {
		f.Add(append([]byte(nil), blob[:n]...))
	}
	flip := func(i int, mask byte) []byte {
		b := append([]byte(nil), blob...)
		b[i] ^= mask
		return fixCRC(b)
	}
	f.Add(flip(8, 0xff))            // version bump
	f.Add(flip(10, 0x7f))           // section count
	f.Add(flip(14, 0xff))           // first section name length
	f.Add(flip(len(blob)/2, 0x01))  // payload bit rot (CRC re-fixed)
	f.Add(flip(len(blob)-20, 0x80)) // near-trailer flip
	corrupt := append([]byte(nil), blob...)
	corrupt[len(corrupt)/3] ^= 0x20 // CRC left stale: checksum path
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			if c != nil {
				t.Fatal("Decode returned a checkpoint alongside an error")
			}
			return
		}
		// A successful decode must re-encode to a canonical blob that
		// decodes to the same state (the encoding itself is deterministic,
		// but a fuzzer-found blob may not be canonical — e.g. unsorted
		// counters — so compare decoded state, not bytes).
		re := c.Encode()
		c2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded checkpoint failed to decode: %v", err)
		}
		if !bytes.Equal(re, c2.Encode()) {
			t.Fatal("canonical re-encoding is not a fixed point")
		}
	})
}
