package collective

import "math/bits"

// The autotuner picks the algorithm per (collective, message-size bucket,
// world size — fixed per engine). Selection is seeded from cost-model dry
// runs of each candidate schedule and refined by the measured simulated
// makespan of every executed collective (an EWMA per bucket), mirroring
// NCCL-style tuning where offline tables are corrected by online timings.

// seedCacheCap bounds the dry-run memo so pathological size diversity
// cannot grow it without bound.
const seedCacheCap = 4096

// ewmaAlpha is the refinement smoothing factor.
const ewmaAlpha = 0.2

type seedKey struct {
	op, alg string
	total   int
}

type tuneKey struct {
	op, alg string
	bucket  int // log2 of total wire bytes
}

type ewma struct {
	value float64
	count int
}

type autotuner struct {
	seeds    map[seedKey]float64
	measured map[tuneKey]*ewma
}

func newAutotuner() *autotuner {
	return &autotuner{
		seeds:    make(map[seedKey]float64),
		measured: make(map[tuneKey]*ewma),
	}
}

func sizeBucket(total int) int {
	if total <= 0 {
		return 0
	}
	return bits.Len(uint(total)) - 1
}

// estimate returns the tuner's current belief about alg's makespan for the
// spec: the measured EWMA for its size bucket when available, otherwise the
// cost-model dry run. Callers hold the engine mutex.
func (a *autotuner) estimate(e *Engine, alg string, sp spec) float64 {
	if m, ok := a.measured[tuneKey{op: sp.op, alg: alg, bucket: sizeBucket(sp.total())}]; ok && m.count > 0 {
		return m.value
	}
	return e.predictSeed(alg, sp)
}

// pick returns the menu algorithm with the lowest estimate (menu order
// breaks ties, so selection is deterministic). Callers hold the engine
// mutex.
func (a *autotuner) pick(e *Engine, sp spec) string {
	best, bestT := "", 0.0
	for _, alg := range e.Algorithms(sp.op) {
		t := a.estimate(e, alg, sp)
		if best == "" || t < bestT {
			best, bestT = alg, t
		}
	}
	return best
}

// record folds a measured simulated makespan into the bucket's EWMA.
func (a *autotuner) record(op, alg string, total int, seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	k := tuneKey{op: op, alg: alg, bucket: sizeBucket(total)}
	m := a.measured[k]
	if m == nil {
		a.measured[k] = &ewma{value: seconds, count: 1}
		return
	}
	m.value += ewmaAlpha * (seconds - m.value)
	m.count++
}
