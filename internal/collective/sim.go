package collective

import (
	"fmt"

	"compso/internal/pool"
)

// Transfer is one point-to-point message inside a schedule step.
type Transfer struct {
	Src, Dst int
	// Bytes is the wire size; zero-byte transfers still pay the link α
	// (they are real messages).
	Bytes int
}

// sim executes a step schedule over the topology's links, advancing
// per-rank clocks and per-link occupancy. One sim instance covers one
// collective; occupancy does not persist across collectives because the
// SPMD rendezvous serializes them.
type sim struct {
	topo *Topology
	// clock is each rank's simulated time.
	clock []float64
	// egress/ingress are per-rank NVLink port busy-until times.
	egress, ingress []float64
	// nicOut/nicIn are per-node NIC busy-until times (full duplex).
	nicOut, nicIn []float64

	// snap is the per-step clock snapshot scratch, reused across steps.
	snap []float64

	op, alg string
	step    int
	events  []Event
	// dropEvents skips event retention (mega-scale runs where the trace
	// would dominate memory); timing is unaffected.
	dropEvents bool
	// pert optionally perturbs per-transfer link timing (fault injection);
	// nil charges the clean topology cost. Prediction dry runs leave it
	// nil so the cost model keeps describing the healthy fabric.
	pert LinkPerturber
}

// newSim starts a collective at the given per-rank arrival times, charging
// the per-collective launch cost to every rank. All link-occupancy state
// comes from the buffer pool; release returns it (the clock slice is a
// plain allocation because it escapes as Outcome.Ends).
func newSim(topo *Topology, op, alg string, starts []float64) *sim {
	clock := make([]float64, topo.P)
	for i := range clock {
		clock[i] = starts[i] + topo.Launch
	}
	n := topo.Nodes()
	egress := pool.F64(topo.P)
	clear(egress)
	ingress := pool.F64(topo.P)
	clear(ingress)
	nicOut := pool.F64(n)
	clear(nicOut)
	nicIn := pool.F64(n)
	clear(nicIn)
	return &sim{
		topo: topo, clock: clock,
		egress: egress, ingress: ingress,
		nicOut: nicOut, nicIn: nicIn,
		snap: pool.F64(topo.P),
		op:   op, alg: alg,
	}
}

// release returns the pooled occupancy scratch. The clock slice stays
// valid (it is handed out as Outcome.Ends).
func (s *sim) release() {
	pool.PutF64(s.egress)
	pool.PutF64(s.ingress)
	pool.PutF64(s.nicOut)
	pool.PutF64(s.nicIn)
	pool.PutF64(s.snap)
	s.egress, s.ingress, s.nicOut, s.nicIn, s.snap = nil, nil, nil, nil, nil
}

// runStep executes one step: every transfer's start time is derived from
// the rank clocks at step entry, so transfers within a step are concurrent
// except where they share a link — shared egress ports or NICs serialize
// in transfer order, which is how contention emerges from the schedule.
func (s *sim) runStep(ts []Transfer) {
	if len(ts) == 0 {
		s.step++
		return
	}
	snap := s.snap
	copy(snap, s.clock)
	for _, tr := range ts {
		if tr.Src == tr.Dst {
			continue
		}
		if tr.Src < 0 || tr.Src >= s.topo.P || tr.Dst < 0 || tr.Dst >= s.topo.P || tr.Bytes < 0 {
			panic(fmt.Sprintf("collective: bad transfer %+v for P=%d", tr, s.topo.P))
		}
		ready := snap[tr.Src]
		if snap[tr.Dst] > ready {
			ready = snap[tr.Dst]
		}
		var start, end float64
		var link LinkClass
		if s.topo.SameNode(tr.Src, tr.Dst) {
			link = LinkIntra
			start = max3(ready, s.egress[tr.Src], s.ingress[tr.Dst])
			end = start + s.linkTime(tr, link, start, s.topo.IntraAlpha, s.topo.IntraBeta)
			s.egress[tr.Src], s.ingress[tr.Dst] = end, end
		} else {
			link = LinkInter
			sn, dn := s.topo.Node(tr.Src), s.topo.Node(tr.Dst)
			start = max3(ready, s.nicOut[sn], s.nicIn[dn])
			end = start + s.linkTime(tr, link, start, s.topo.InterAlpha, s.topo.InterBeta)
			s.nicOut[sn], s.nicIn[dn] = end, end
		}
		if end > s.clock[tr.Src] {
			s.clock[tr.Src] = end
		}
		if end > s.clock[tr.Dst] {
			s.clock[tr.Dst] = end
		}
		if s.dropEvents {
			continue
		}
		s.events = append(s.events, Event{
			Op: s.op, Algorithm: s.alg, Step: s.step,
			Src: tr.Src, Dst: tr.Dst, Link: link, Bytes: tr.Bytes,
			Start: start, End: end,
		})
	}
	s.step++
}

// linkTime returns one transfer's duration over a link, applying the
// optional fault perturber to the clean α–β charge.
func (s *sim) linkTime(tr Transfer, link LinkClass, start, alpha, beta float64) float64 {
	if s.pert == nil {
		return alpha + beta*float64(tr.Bytes)
	}
	as, bs, j := s.pert.PerturbLink(tr.Src, tr.Dst, s.topo.Node(tr.Src), s.topo.Node(tr.Dst), link, tr.Bytes, start)
	return (alpha*as + beta*float64(tr.Bytes)*bs) * (1 + j)
}

// runRounds executes a sequence of steps.
func (s *sim) runRounds(rounds [][]Transfer) {
	for _, r := range rounds {
		s.runStep(r)
	}
}

func max3(a, b, c float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
