package collective

// Algorithm names. "analytic" reproduces the legacy closed-form α–β charge
// and is only used when forced by policy (it is not an autotuner
// candidate).
const (
	AlgRing              = "ring"
	AlgRecursiveDoubling = "recursive-doubling"
	AlgBinomial          = "binomial"
	AlgHierarchical      = "hierarchical"
	AlgAnalytic          = "analytic"
)

// Collective op names used in traces, stats keys and the autotuner.
const (
	OpAllGather     = "allgather"
	OpAllReduce     = "allreduce"
	OpReduceScatter = "reducescatter"
	OpBroadcast     = "broadcast"
	OpSendRecv      = "sendrecv"
)

func mod(a, p int) int { return ((a % p) + p) % p }

// splitBytes splits n bytes into p near-even chunks (first n%p chunks get
// the extra byte) — the wire chunking of ring reduce collectives.
func splitBytes(n, p int) []int {
	base, rem := n/p, n%p
	out := make([]int, p)
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// ringAllGather schedules the classic P−1 step ring: at step s, rank r
// forwards chunk (r−s) mod P to rank r+1. Handles variable per-rank sizes.
func ringAllGather(s *sim, sizes []int) {
	p := s.topo.P
	for step := 0; step < p-1; step++ {
		ts := make([]Transfer, 0, p)
		for r := 0; r < p; r++ {
			ts = append(ts, Transfer{Src: r, Dst: (r + 1) % p, Bytes: sizes[mod(r-step, p)]})
		}
		s.runStep(ts)
	}
}

// ringReduceScatter schedules the P−1 step reduce-scatter ring over the
// given per-chunk wire sizes: at step s, rank r forwards the partial sum of
// chunk (r−s) mod P to rank r+1; after P−1 steps rank r owns completed
// chunk (r+1) mod P.
func ringReduceScatter(s *sim, chunkBytes []int) {
	p := s.topo.P
	for step := 0; step < p-1; step++ {
		ts := make([]Transfer, 0, p)
		for r := 0; r < p; r++ {
			ts = append(ts, Transfer{Src: r, Dst: (r + 1) % p, Bytes: chunkBytes[mod(r-step, p)]})
		}
		s.runStep(ts)
	}
}

// ringAllReduce schedules reduce-scatter followed by all-gather of the
// reduced chunks: 2(P−1) steps moving 2(P−1)/P · n bytes per rank.
func ringAllReduce(s *sim, nBytes int) {
	p := s.topo.P
	chunks := splitBytes(nBytes, p)
	ringReduceScatter(s, chunks)
	// All-gather phase: rank r starts owning chunk (r+1) mod P and forwards
	// chunk (r+1−s) mod P at step s.
	for step := 0; step < p-1; step++ {
		ts := make([]Transfer, 0, p)
		for r := 0; r < p; r++ {
			ts = append(ts, Transfer{Src: r, Dst: (r + 1) % p, Bytes: chunks[mod(r+1-step, p)]})
		}
		s.runStep(ts)
	}
}

// recursiveDoublingAllGather schedules the log-step exchange. Non-power-of-
// two world sizes use the standard pre/post fixup: the p−q highest ranks
// fold their block into a partner below the largest power of two q, the q
// ranks double, and the partners send the full result back.
func recursiveDoublingAllGather(s *sim, sizes []int) {
	p := s.topo.P
	q := 1
	for q*2 <= p {
		q *= 2
	}
	extras := p - q
	held := append([]int(nil), sizes...)
	total := 0
	for _, sz := range sizes {
		total += sz
	}
	if extras > 0 {
		ts := make([]Transfer, 0, extras)
		for e := q; e < p; e++ {
			ts = append(ts, Transfer{Src: e, Dst: e - q, Bytes: sizes[e]})
		}
		s.runStep(ts)
		for e := q; e < p; e++ {
			held[e-q] += sizes[e]
		}
	}
	for d := 1; d < q; d <<= 1 {
		ts := make([]Transfer, 0, q)
		for r := 0; r < q; r++ {
			ts = append(ts, Transfer{Src: r, Dst: r ^ d, Bytes: held[r]})
		}
		s.runStep(ts)
		next := append([]int(nil), held[:q]...)
		for r := 0; r < q; r++ {
			next[r] = held[r] + held[r^d]
		}
		copy(held, next)
	}
	if extras > 0 {
		ts := make([]Transfer, 0, extras)
		for e := q; e < p; e++ {
			ts = append(ts, Transfer{Src: e - q, Dst: e, Bytes: total - sizes[e]})
		}
		s.runStep(ts)
	}
}

// binomialBcastRounds returns the round-by-round transfers of a binomial
// tree broadcast of bytes within group, rooted at group[rootIdx]. Rounds
// from different groups can be merged step-wise to run trees concurrently.
func binomialBcastRounds(group []int, rootIdx, bytes int) [][]Transfer {
	n := len(group)
	vr := func(j int) int { return group[(rootIdx+j)%n] }
	var rounds [][]Transfer
	for d := 1; d < n; d <<= 1 {
		var ts []Transfer
		for j := 0; j < d && j+d < n; j++ {
			ts = append(ts, Transfer{Src: vr(j), Dst: vr(j + d), Bytes: bytes})
		}
		rounds = append(rounds, ts)
	}
	return rounds
}

// binomialReduceRounds returns the rounds of a binomial-tree reduction of
// bytes within group toward group[0].
func binomialReduceRounds(group []int, bytes int) [][]Transfer {
	n := len(group)
	var rounds [][]Transfer
	for d := 1; d < n; d <<= 1 {
		var ts []Transfer
		for j := d; j < n; j += 2 * d {
			ts = append(ts, Transfer{Src: group[j], Dst: group[j-d], Bytes: bytes})
		}
		rounds = append(rounds, ts)
	}
	return rounds
}

// mergeRounds interleaves several groups' round sequences step-wise so the
// groups progress concurrently (e.g. every node's intra-node tree runs in
// parallel).
func mergeRounds(groups [][][]Transfer) [][]Transfer {
	maxLen := 0
	for _, g := range groups {
		if len(g) > maxLen {
			maxLen = len(g)
		}
	}
	out := make([][]Transfer, maxLen)
	for k := 0; k < maxLen; k++ {
		for _, g := range groups {
			if k < len(g) {
				out[k] = append(out[k], g[k]...)
			}
		}
	}
	return out
}

// binomialBroadcast schedules a flat binomial tree over all ranks.
func binomialBroadcast(s *sim, bytes, root int) {
	group := make([]int, s.topo.P)
	for i := range group {
		group[i] = i
	}
	s.runRounds(binomialBcastRounds(group, root, bytes))
}

// hierarchicalAllGather schedules the paper's §4 two-level exchange:
//  1. intra-node gather — every member sends its payload to the node
//     leader over NVLink (one step; each leader's ingress port serializes
//     its members, so the stage costs the true gather lower bound);
//  2. inter-node ring all-gather among node leaders over the NICs, with
//     per-node aggregated sizes;
//  3. intra-node binomial broadcast of the full result from each leader.
func hierarchicalAllGather(s *sim, sizes []int) {
	t := s.topo
	n := t.Nodes()
	nodeBytes := make([]int, n)
	total := 0
	var gather []Transfer
	for node := 0; node < n; node++ {
		lead := t.Leader(node)
		for _, r := range t.NodeRanks(node) {
			nodeBytes[node] += sizes[r]
			total += sizes[r]
			if r != lead {
				gather = append(gather, Transfer{Src: r, Dst: lead, Bytes: sizes[r]})
			}
		}
	}
	s.runStep(gather)
	// Ring all-gather among leaders: leader i forwards node chunk
	// (i−step) mod n to leader i+1.
	for step := 0; step < n-1; step++ {
		ts := make([]Transfer, 0, n)
		for i := 0; i < n; i++ {
			ts = append(ts, Transfer{Src: t.Leader(i), Dst: t.Leader((i + 1) % n), Bytes: nodeBytes[mod(i-step, n)]})
		}
		s.runStep(ts)
	}
	// Intra-node broadcast of the complete buffer, all nodes concurrently.
	var groups [][][]Transfer
	for node := 0; node < n; node++ {
		ranks := t.NodeRanks(node)
		if len(ranks) > 1 {
			groups = append(groups, binomialBcastRounds(ranks, 0, total))
		}
	}
	s.runRounds(mergeRounds(groups))
}

// hierarchicalAllReduce schedules the two-level reduction:
//  1. intra-node binomial-tree reduce of the full vector to each leader;
//  2. inter-node ring all-reduce among leaders;
//  3. intra-node binomial broadcast of the reduced vector.
func hierarchicalAllReduce(s *sim, nBytes int) {
	t := s.topo
	n := t.Nodes()
	var reduce, bcast [][][]Transfer
	for node := 0; node < n; node++ {
		ranks := t.NodeRanks(node)
		if len(ranks) > 1 {
			reduce = append(reduce, binomialReduceRounds(ranks, nBytes))
			bcast = append(bcast, binomialBcastRounds(ranks, 0, nBytes))
		}
	}
	s.runRounds(mergeRounds(reduce))
	if n > 1 {
		// Ring all-reduce among the node leaders (chunked by node count).
		chunks := splitBytes(nBytes, n)
		for step := 0; step < n-1; step++ {
			ts := make([]Transfer, 0, n)
			for i := 0; i < n; i++ {
				ts = append(ts, Transfer{Src: t.Leader(i), Dst: t.Leader((i + 1) % n), Bytes: chunks[mod(i-step, n)]})
			}
			s.runStep(ts)
		}
		for step := 0; step < n-1; step++ {
			ts := make([]Transfer, 0, n)
			for i := 0; i < n; i++ {
				ts = append(ts, Transfer{Src: t.Leader(i), Dst: t.Leader((i + 1) % n), Bytes: chunks[mod(i+1-step, n)]})
			}
			s.runStep(ts)
		}
	}
	s.runRounds(mergeRounds(bcast))
}

// hierarchicalReduceScatter schedules the two-level variant: intra-node
// tree reduce to leaders, ring reduce-scatter among leaders, then leaders
// return each member's shard directly.
func hierarchicalReduceScatter(s *sim, chunkBytes []int) {
	t := s.topo
	n := t.Nodes()
	total := 0
	for _, c := range chunkBytes {
		total += c
	}
	var reduce [][][]Transfer
	for node := 0; node < n; node++ {
		ranks := t.NodeRanks(node)
		if len(ranks) > 1 {
			reduce = append(reduce, binomialReduceRounds(ranks, total))
		}
	}
	s.runRounds(mergeRounds(reduce))
	if n > 1 {
		// Ring reduce-scatter among leaders over per-node byte groups.
		nodeBytes := make([]int, n)
		for r, c := range chunkBytes {
			nodeBytes[t.Node(r)] += c
		}
		for step := 0; step < n-1; step++ {
			ts := make([]Transfer, 0, n)
			for i := 0; i < n; i++ {
				ts = append(ts, Transfer{Src: t.Leader(i), Dst: t.Leader((i + 1) % n), Bytes: nodeBytes[mod(i-step, n)]})
			}
			s.runStep(ts)
		}
	}
	// Leaders deliver each member's shard.
	var scatter []Transfer
	for node := 0; node < n; node++ {
		lead := t.Leader(node)
		for _, r := range t.NodeRanks(node) {
			if r != lead {
				scatter = append(scatter, Transfer{Src: lead, Dst: r, Bytes: chunkBytes[r]})
			}
		}
	}
	s.runStep(scatter)
}

// hierarchicalBroadcast schedules root → other node leaders (binomial over
// NIC links) followed by concurrent intra-node binomial trees. The root
// acts as its own node's leader.
func hierarchicalBroadcast(s *sim, bytes, root int) {
	t := s.topo
	n := t.Nodes()
	rootNode := t.Node(root)
	// Inter-node stage: root plus the leaders of the other nodes.
	heads := []int{root}
	for node := 0; node < n; node++ {
		if node != rootNode {
			heads = append(heads, t.Leader(node))
		}
	}
	s.runRounds(binomialBcastRounds(heads, 0, bytes))
	// Intra-node stage: each node's tree rooted at its head.
	var groups [][][]Transfer
	for node := 0; node < n; node++ {
		ranks := t.NodeRanks(node)
		if len(ranks) <= 1 {
			continue
		}
		rootIdx := 0
		if node == rootNode {
			for i, r := range ranks {
				if r == root {
					rootIdx = i
				}
			}
		}
		groups = append(groups, binomialBcastRounds(ranks, rootIdx, bytes))
	}
	s.runRounds(mergeRounds(groups))
}
