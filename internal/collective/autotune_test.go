package collective

import "testing"

func TestAutotunerPrefersHierarchicalInterNode(t *testing.T) {
	// On Platform1-like parameters the hierarchical schedules dominate
	// ring/binomial for multi-node all-reduce across sizes (fewer NIC
	// crossings and α terms), so the seeded table must select them.
	e := forcedEngine(t, 16, "")
	for _, bytes := range []int{1 << 12, 1 << 18, 1 << 24} {
		alg, sec := e.PredictAllReduce(bytes)
		if alg != AlgHierarchical {
			t.Errorf("allreduce %d bytes: picked %s", bytes, alg)
		}
		if sec <= 0 {
			t.Errorf("allreduce %d bytes: predicted %g", bytes, sec)
		}
	}
	// Small inter-node all-gathers are latency-bound: a log-step or
	// two-level schedule must beat the (P−1)-step flat ring.
	alg, _ := e.PredictAllGather(256)
	if alg == AlgRing {
		t.Errorf("small all-gather picked the flat ring")
	}
}

func TestAutotunerRefinementOverridesSeed(t *testing.T) {
	e := forcedEngine(t, 8, "")
	sp := e.uniformSpec(OpAllReduce, 1<<20)
	e.mu.Lock()
	seedRing := e.predictSeed(AlgRing, sp)
	seedHier := e.predictSeed(AlgHierarchical, sp)
	e.mu.Unlock()
	if seedHier >= seedRing {
		t.Fatalf("precondition: hierarchical seed %g not below ring %g", seedHier, seedRing)
	}
	// Feed measurements claiming hierarchical is terribly slow at this
	// bucket; the tuner must switch to ring.
	e.mu.Lock()
	for i := 0; i < 50; i++ {
		e.tuner.record(OpAllReduce, AlgHierarchical, 1<<20, seedRing*10)
	}
	alg := e.tuner.pick(e, sp)
	e.mu.Unlock()
	if alg != AlgRing {
		t.Fatalf("tuner did not react to measurements: picked %s", alg)
	}
	// Other size buckets are unaffected.
	e.mu.Lock()
	other := e.tuner.pick(e, e.uniformSpec(OpAllReduce, 1<<10))
	e.mu.Unlock()
	if other != AlgHierarchical {
		t.Fatalf("unrelated bucket switched to %s", other)
	}
}

func TestAutotunerExecutionRecordsMeasurements(t *testing.T) {
	e := forcedEngine(t, 8, "")
	vecs := mkVecs(8, 1024)
	for i := 0; i < 3; i++ {
		e.AllReduce(vecs, make([]float64, 8))
	}
	lines := e.TunerSnapshot()
	if len(lines) == 0 {
		t.Fatal("no tuner state after executions")
	}
}

func TestCostTableCoversMenu(t *testing.T) {
	e := forcedEngine(t, 8, "")
	totals := []int{1 << 10, 1 << 16, 1 << 22}
	table := e.CostTable(OpAllGather, totals)
	if len(table) != len(e.Algorithms(OpAllGather)) {
		t.Fatalf("cost table has %d algorithms", len(table))
	}
	for alg, row := range table {
		if len(row) != len(totals) {
			t.Fatalf("%s row has %d entries", alg, len(row))
		}
		for i := 1; i < len(row); i++ {
			if row[i] <= row[i-1] {
				t.Fatalf("%s cost not increasing in size: %v", alg, row)
			}
		}
	}
}

func TestForcedPolicyFallsBackForUnimplementedOp(t *testing.T) {
	// "binomial" only implements broadcast; other ops must autotune
	// rather than fail.
	e := forcedEngine(t, 8, AlgBinomial)
	_, out := e.AllReduce(mkVecs(8, 16), make([]float64, 8))
	if out.Algorithm == AlgBinomial || out.Algorithm == "" {
		t.Fatalf("allreduce dispatched to %q", out.Algorithm)
	}
	slots := make([][]byte, 8)
	slots[0] = []byte("x")
	_, bout := e.Broadcast(slots, 0, make([]float64, 8))
	if bout.Algorithm != AlgBinomial {
		t.Fatalf("broadcast dispatched to %q", bout.Algorithm)
	}
}
