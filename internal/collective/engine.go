package collective

import (
	"fmt"
	"sort"
	"sync"
)

// CostModel supplies the legacy closed-form α–β charges, used by the
// selectable "analytic" algorithm for backward compatibility. Any nil
// function disables the analytic path for that op.
type CostModel struct {
	AllReduce     func(nBytes int) float64
	AllGather     func(sizes []int) float64
	ReduceScatter func(nBytes int) float64
	Broadcast     func(nBytes int) float64
}

// Outcome describes one executed collective: the chosen algorithm, each
// rank's completion time, and the per-step event trace.
type Outcome struct {
	Op        string
	Algorithm string
	// Bytes is the collective's total wire size (the sum of the spec's
	// per-rank sizes), for observability attribution.
	Bytes int
	// Start is the collective's logical begin (the last arrival).
	Start float64
	// Ends holds each rank's simulated completion time. Ranks that finish
	// their part of the schedule early get earlier times.
	Ends []float64
	// Predicted is the fault-free cost-model makespan of the same
	// algorithm and spec (a dry run from uniform clocks, unaffected by any
	// link perturber). Comparing it against the executed makespan is how
	// the training loop's straggler guard detects a degraded fabric.
	Predicted float64
	// Events is the full per-step transfer trace.
	Events []Event
}

// EventsFor returns the trace entries rank participated in (summary events
// with Src = Dst = -1 are included for every rank).
func (o *Outcome) EventsFor(rank int) []Event {
	var out []Event
	for _, ev := range o.Events {
		if ev.Src == rank || ev.Dst == rank || ev.Src < 0 {
			out = append(out, ev)
		}
	}
	return out
}

// MaxEnd returns the collective's makespan end time.
func (o *Outcome) MaxEnd() float64 { return maxOf(o.Ends) }

// LinkPerturber perturbs per-transfer link timing — the hook the fault
// layer plugs degraded links and per-message jitter through. For one
// transfer it returns multiplicative α and β scale factors plus a realized
// fractional jitter; the simulator charges
//
//	(α·alphaScale + β·bytes·betaScale) · (1 + jitter)
//
// Implementations must be deterministic pure functions of their arguments
// (plus internal configuration) so simulated runs stay reproducible.
type LinkPerturber interface {
	PerturbLink(src, dst, srcNode, dstNode int, link LinkClass, bytes int, start float64) (alphaScale, betaScale, jitter float64)
}

// Engine dispatches collectives to step-level algorithms over a Topology.
// It is safe for concurrent use; in practice the cluster's rendezvous
// serializes collective execution.
type Engine struct {
	topo   *Topology
	cost   CostModel
	policy string
	pert   LinkPerturber
	// dropEvents disables per-transfer event retention in executed
	// schedules (SetEventRetention). Timing, tuner feedback and Outcome
	// end times are unaffected; Outcome.Events is simply empty.
	dropEvents bool

	mu    sync.Mutex
	tuner *autotuner
}

// Policies returns the accepted policy strings: "" / "auto" (autotune per
// collective and message size), "analytic" (legacy closed forms), or a
// forced algorithm name (which falls back to autotuning for ops it does
// not implement).
func Policies() []string {
	return []string{"", "auto", AlgAnalytic, AlgRing, AlgRecursiveDoubling, AlgBinomial, AlgHierarchical}
}

// ValidPolicy reports whether name is an accepted policy string.
func ValidPolicy(name string) bool {
	for _, p := range Policies() {
		if name == p {
			return true
		}
	}
	return false
}

// NewEngine builds an engine for the topology. policy selects the dispatch
// rule (see Policies). The cost model may be zero-valued if the analytic
// algorithm is never requested.
func NewEngine(topo *Topology, cost CostModel, policy string) (*Engine, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if !ValidPolicy(policy) {
		return nil, fmt.Errorf("collective: unknown policy %q (have %v)", policy, Policies())
	}
	if policy == AlgAnalytic && (cost.AllReduce == nil || cost.AllGather == nil ||
		cost.ReduceScatter == nil || cost.Broadcast == nil) {
		return nil, fmt.Errorf("collective: analytic policy requires a full cost model")
	}
	return &Engine{topo: topo, cost: cost, policy: policy, tuner: newAutotuner()}, nil
}

// Topology returns the engine's platform model.
func (e *Engine) Topology() *Topology { return e.topo }

// SetPerturber installs a link perturber (nil removes it). Install before
// the engine starts executing collectives; the stepped schedules and
// P2PTime consult it, while prediction dry runs stay fault-free so the
// tuner's seeds — and the guard's divergence baseline — describe the
// healthy fabric.
func (e *Engine) SetPerturber(p LinkPerturber) {
	e.mu.Lock()
	e.pert = p
	e.mu.Unlock()
}

// SetEventRetention enables or disables per-transfer event retention in
// executed schedules (on by default). Mega-scale discrete-event runs turn
// it off: a flat ring at P=8192 schedules ~67M transfers per collective,
// and retaining them would dominate memory for traces nobody reads.
// Timing is bit-identical either way — events only record, never steer.
// Call before the engine starts executing collectives.
func (e *Engine) SetEventRetention(on bool) { e.dropEvents = !on }

// perturber returns the installed link perturber (nil when none).
func (e *Engine) perturber() LinkPerturber {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pert
}

// Retune discards the autotuner's measured state so subsequent picks
// re-seed from cost-model dry runs and re-learn from fresh measurements —
// the recovery action of the training loop's straggler guard after the
// fabric's behaviour shifts (EWMAs learned under old conditions would
// otherwise keep steering picks).
func (e *Engine) Retune() {
	e.mu.Lock()
	e.tuner.measured = make(map[tuneKey]*ewma)
	e.mu.Unlock()
}

// P2PTime returns the α–β cost of one point-to-point message between two
// ranks at the given start time, applying the installed link perturber
// (topology cost when none). It is the engine-aware replacement for
// Topology.P2PTime on live transfer paths.
func (e *Engine) P2PTime(src, dst, bytes int, start float64) float64 {
	t := e.topo
	if src == dst {
		return 0
	}
	var alpha, beta float64
	link := LinkInter
	if t.SameNode(src, dst) {
		link = LinkIntra
		alpha, beta = t.IntraAlpha, t.IntraBeta
	} else {
		alpha, beta = t.InterAlpha, t.InterBeta
	}
	dur := alpha + beta*float64(bytes)
	if p := e.perturber(); p != nil {
		as, bs, j := p.PerturbLink(src, dst, t.Node(src), t.Node(dst), link, bytes, start)
		dur = (alpha*as + beta*float64(bytes)*bs) * (1 + j)
	}
	return dur
}

// Algorithms returns the step-level algorithm menu for an op (the analytic
// fallback is policy-only and not listed).
func (e *Engine) Algorithms(op string) []string {
	switch op {
	case OpAllGather:
		return []string{AlgRing, AlgRecursiveDoubling, AlgHierarchical}
	case OpAllReduce:
		return []string{AlgRing, AlgHierarchical}
	case OpReduceScatter:
		return []string{AlgRing, AlgHierarchical}
	case OpBroadcast:
		return []string{AlgBinomial, AlgHierarchical}
	}
	return nil
}

// spec captures one collective invocation for scheduling purposes.
type spec struct {
	op string
	// sizes is per-rank contribution bytes (allgather), per-rank shard
	// bytes (reducescatter), or the single total wire size (allreduce,
	// broadcast).
	sizes []int
	root  int
}

func (sp spec) total() int {
	t := 0
	for _, s := range sp.sizes {
		t += s
	}
	return t
}

// scheduleFor returns the schedule builder for (op, alg), or nil when the
// algorithm does not implement the op.
func (e *Engine) scheduleFor(alg string, sp spec) func(*sim) {
	switch sp.op {
	case OpAllGather:
		switch alg {
		case AlgRing:
			return func(s *sim) { ringAllGather(s, sp.sizes) }
		case AlgRecursiveDoubling:
			return func(s *sim) { recursiveDoublingAllGather(s, sp.sizes) }
		case AlgHierarchical:
			return func(s *sim) { hierarchicalAllGather(s, sp.sizes) }
		}
	case OpAllReduce:
		switch alg {
		case AlgRing:
			return func(s *sim) { ringAllReduce(s, sp.total()) }
		case AlgHierarchical:
			return func(s *sim) { hierarchicalAllReduce(s, sp.total()) }
		}
	case OpReduceScatter:
		switch alg {
		case AlgRing:
			return func(s *sim) { ringReduceScatter(s, sp.sizes) }
		case AlgHierarchical:
			return func(s *sim) { hierarchicalReduceScatter(s, sp.sizes) }
		}
	case OpBroadcast:
		switch alg {
		case AlgBinomial:
			return func(s *sim) { binomialBroadcast(s, sp.total(), sp.root) }
		case AlgHierarchical:
			return func(s *sim) { hierarchicalBroadcast(s, sp.total(), sp.root) }
		}
	}
	return nil
}

// analyticTime evaluates the closed-form charge for a spec.
func (e *Engine) analyticTime(sp spec) float64 {
	switch sp.op {
	case OpAllGather:
		if e.cost.AllGather != nil {
			return e.cost.AllGather(sp.sizes)
		}
	case OpAllReduce:
		if e.cost.AllReduce != nil {
			return e.cost.AllReduce(sp.total())
		}
	case OpReduceScatter:
		if e.cost.ReduceScatter != nil {
			return e.cost.ReduceScatter(sp.total())
		}
	case OpBroadcast:
		if e.cost.Broadcast != nil {
			return e.cost.Broadcast(sp.total())
		}
	}
	return 0
}

// dispatch picks an algorithm for the spec and executes its schedule.
func (e *Engine) dispatch(sp spec, starts []float64) *Outcome {
	start := maxOf(starts)
	// Trivial cases keep the legacy semantics: free, but still a sync
	// point at the last arrival.
	if e.topo.P == 1 || sp.total() == 0 {
		ends := make([]float64, e.topo.P)
		for i := range ends {
			ends[i] = start
		}
		return &Outcome{Op: sp.op, Algorithm: "trivial", Bytes: sp.total(), Start: start, Ends: ends}
	}
	alg := e.pick(sp)
	if alg == AlgAnalytic {
		ana := e.analyticTime(sp)
		t := start + ana
		ends := make([]float64, e.topo.P)
		for i := range ends {
			ends[i] = t
		}
		link := LinkIntra
		if e.topo.Nodes() > 1 {
			link = LinkInter
		}
		return &Outcome{
			Op: sp.op, Algorithm: AlgAnalytic, Bytes: sp.total(), Start: start, Ends: ends,
			Predicted: ana,
			Events: []Event{{Op: sp.op, Algorithm: AlgAnalytic, Src: -1, Dst: -1,
				Link: link, Bytes: sp.total(), Start: start, End: t}},
		}
	}
	s := newSim(e.topo, sp.op, alg, starts)
	s.pert = e.perturber()
	s.dropEvents = e.dropEvents
	e.scheduleFor(alg, sp)(s)
	out := &Outcome{Op: sp.op, Algorithm: alg, Bytes: sp.total(), Start: start, Ends: s.clock, Events: s.events}
	s.release()
	e.mu.Lock()
	out.Predicted = e.predictSeed(alg, sp)
	e.tuner.record(sp.op, alg, sp.total(), out.MaxEnd()-start)
	e.mu.Unlock()
	return out
}

// pick resolves the policy to an algorithm for this spec.
func (e *Engine) pick(sp spec) string {
	switch e.policy {
	case "", "auto":
	case AlgAnalytic:
		return AlgAnalytic
	default:
		if e.scheduleFor(e.policy, sp) != nil {
			return e.policy
		}
		// Forced algorithm does not implement this op: autotune instead.
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tuner.pick(e, sp)
}

// predictSeed dry-runs an algorithm's schedule from uniform clocks and
// returns its cost-model makespan. Called with e.mu held (memoized).
func (e *Engine) predictSeed(alg string, sp spec) float64 {
	key := seedKey{op: sp.op, alg: alg, total: sp.total()}
	if v, ok := e.tuner.seeds[key]; ok {
		return v
	}
	s := newSim(e.topo, sp.op, alg, make([]float64, e.topo.P))
	s.dropEvents = true // dry run: nobody reads the trace
	e.scheduleFor(alg, sp)(s)
	v := maxOf(s.clock)
	s.release()
	if len(e.tuner.seeds) < seedCacheCap {
		e.tuner.seeds[key] = v
	}
	return v
}

// Predict returns the autotuner's current choice and predicted simulated
// seconds for a collective with the given spec — the engine's "cost-model
// table" view, also used to seed perfmodel lookup tables.
func (e *Engine) predict(sp spec) (string, float64) {
	if e.topo.P == 1 || sp.total() == 0 {
		return "trivial", 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	best, bestT := "", 0.0
	for _, alg := range e.Algorithms(sp.op) {
		t := e.tuner.estimate(e, alg, sp)
		if best == "" || t < bestT {
			best, bestT = alg, t
		}
	}
	return best, bestT
}

// PredictAllGather returns the best algorithm and predicted seconds for an
// all-gather where every rank contributes chunkBytes.
func (e *Engine) PredictAllGather(chunkBytes int) (string, float64) {
	sizes := make([]int, e.topo.P)
	for i := range sizes {
		sizes[i] = chunkBytes
	}
	return e.predict(spec{op: OpAllGather, sizes: sizes})
}

// PredictAllReduce returns the best algorithm and predicted seconds for an
// all-reduce of nBytes.
func (e *Engine) PredictAllReduce(nBytes int) (string, float64) {
	return e.predict(spec{op: OpAllReduce, sizes: []int{nBytes}})
}

// CostTable returns the predicted simulated seconds of every step-level
// algorithm for an op across the given total wire sizes — the seeded
// cost-model table the autotuner starts from, in menu order.
func (e *Engine) CostTable(op string, totals []int) map[string][]float64 {
	out := make(map[string][]float64)
	for _, alg := range e.Algorithms(op) {
		row := make([]float64, len(totals))
		for i, n := range totals {
			sp := e.uniformSpec(op, n)
			e.mu.Lock()
			row[i] = e.predictSeed(alg, sp)
			e.mu.Unlock()
		}
		out[alg] = row
	}
	return out
}

// uniformSpec builds a spec with n total bytes spread evenly across ranks
// (for per-rank-size ops) for prediction purposes.
func (e *Engine) uniformSpec(op string, n int) spec {
	switch op {
	case OpAllGather:
		sizes := make([]int, e.topo.P)
		per := n / e.topo.P
		for i := range sizes {
			sizes[i] = per
		}
		return spec{op: op, sizes: sizes}
	case OpReduceScatter:
		return spec{op: op, sizes: splitBytes(n, e.topo.P)}
	default:
		return spec{op: op, sizes: []int{n}}
	}
}

// AllGather executes an all-gather of the per-rank payloads (starting at
// the per-rank arrival times) and returns the payloads in rank order plus
// the outcome. The returned slice aliases the inputs.
func (e *Engine) AllGather(payloads [][]byte, starts []float64) ([][]byte, *Outcome) {
	if len(payloads) != e.topo.P {
		panic(fmt.Sprintf("collective: AllGather with %d payloads, world %d", len(payloads), e.topo.P))
	}
	sizes := make([]int, len(payloads))
	for i, p := range payloads {
		sizes[i] = len(p)
	}
	out := e.dispatch(spec{op: OpAllGather, sizes: sizes}, starts)
	return payloads, out
}

// AllReduce sums the per-rank vectors element-wise — contributions are
// accumulated in rank order, so the result is bit-identical on every rank
// and across algorithms — charging 4·len bytes on the wire (FP32, matching
// the repo's wire convention).
func (e *Engine) AllReduce(vecs [][]float64, starts []float64) ([]float64, *Outcome) {
	sum := e.rankOrderSum(vecs, OpAllReduce)
	out := e.dispatch(spec{op: OpAllReduce, sizes: []int{4 * len(sum)}}, starts)
	return sum, out
}

// ReduceScatter sums the per-rank vectors and splits the result into
// contiguous shards: rank r receives elements [r·n/P, (r+1)·n/P), with the
// last rank absorbing the remainder.
func (e *Engine) ReduceScatter(vecs [][]float64, starts []float64) ([][]float64, *Outcome) {
	sum := e.rankOrderSum(vecs, OpReduceScatter)
	p := e.topo.P
	shard := len(sum) / p
	sizes := make([]int, p)
	shards := make([][]float64, p)
	for r := 0; r < p; r++ {
		lo, hi := r*shard, (r+1)*shard
		if r == p-1 {
			hi = len(sum)
		}
		shards[r] = sum[lo:hi]
		sizes[r] = 4 * (hi - lo)
	}
	out := e.dispatch(spec{op: OpReduceScatter, sizes: sizes}, starts)
	return shards, out
}

// Broadcast delivers slots[root] to every rank.
func (e *Engine) Broadcast(slots [][]byte, root int, starts []float64) ([]byte, *Outcome) {
	if root < 0 || root >= e.topo.P {
		panic(fmt.Sprintf("collective: Broadcast root %d, world %d", root, e.topo.P))
	}
	data := slots[root]
	out := e.dispatch(spec{op: OpBroadcast, sizes: []int{len(data)}, root: root}, starts)
	return data, out
}

// Exec schedules one collective without moving any payload bytes — the
// discrete-event (SimOnly) entry point. sizes follows the spec
// convention of the payload-carrying calls: per-rank contribution bytes
// for allgather, per-rank shard bytes for reducescatter, and a single
// total wire size for allreduce and broadcast. starts holds each rank's
// arrival time. The returned Outcome is exactly what the corresponding
// payload call would have produced (same algorithm pick, same autotuner
// feedback, same per-rank end times), which is what makes the event
// engine bit-identical to the goroutine engine.
func (e *Engine) Exec(op string, sizes []int, root int, starts []float64) *Outcome {
	if len(starts) != e.topo.P {
		panic(fmt.Sprintf("collective: Exec with %d starts, world %d", len(starts), e.topo.P))
	}
	switch op {
	case OpAllGather, OpReduceScatter:
		if len(sizes) != e.topo.P {
			panic(fmt.Sprintf("collective: Exec %s with %d sizes, world %d", op, len(sizes), e.topo.P))
		}
	case OpAllReduce:
		if len(sizes) != 1 {
			panic(fmt.Sprintf("collective: Exec %s wants one total size, got %d", op, len(sizes)))
		}
	case OpBroadcast:
		if len(sizes) != 1 {
			panic(fmt.Sprintf("collective: Exec %s wants one total size, got %d", op, len(sizes)))
		}
		if root < 0 || root >= e.topo.P {
			panic(fmt.Sprintf("collective: Exec broadcast root %d, world %d", root, e.topo.P))
		}
	default:
		panic(fmt.Sprintf("collective: Exec unknown op %q", op))
	}
	for _, s := range sizes {
		if s < 0 {
			panic(fmt.Sprintf("collective: Exec %s with negative size %d", op, s))
		}
	}
	return e.dispatch(spec{op: op, sizes: sizes, root: root}, starts)
}

// rankOrderSum adds the vectors in rank order, panicking on length
// mismatches (an SPMD programming error).
func (e *Engine) rankOrderSum(vecs [][]float64, op string) []float64 {
	if len(vecs) != e.topo.P {
		panic(fmt.Sprintf("collective: %s with %d vectors, world %d", op, len(vecs), e.topo.P))
	}
	sum := make([]float64, len(vecs[0]))
	for _, v := range vecs {
		if len(v) != len(sum) {
			panic(fmt.Sprintf("collective: %s length mismatch %d vs %d", op, len(v), len(sum)))
		}
		for i, x := range v {
			sum[i] += x
		}
	}
	return sum
}

// TunerSnapshot reports the autotuner's measured state for inspection:
// one line per (op, algorithm, size bucket) with the refined estimate.
func (e *Engine) TunerSnapshot() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var lines []string
	for k, m := range e.tuner.measured {
		lines = append(lines, fmt.Sprintf("%s/%s bucket=2^%d n=%d est=%.3es",
			k.op, k.alg, k.bucket, m.count, m.value))
	}
	sort.Strings(lines)
	return lines
}
