// Package collective implements step-level, topology-aware collective
// algorithms executed over simulated point-to-point links.
//
// The paper's §4 communication optimizations (hierarchical reduction:
// intra-node NVLink stage, then inter-node Slingshot stage) cannot be
// expressed by a single closed-form α–β charge per collective: they need a
// real schedule in which every step moves bytes over concrete links, link
// occupancy serializes competing transfers, and the collective's cost
// emerges from the critical path. This package provides
//
//   - Topology: a two-tier platform model (per-GPU NVLink ports, per-node
//     NICs) with α/β parameters per link class;
//   - step schedules for ring all-gather, ring all-reduce (reduce-scatter +
//     all-gather), ring reduce-scatter, recursive-doubling all-gather,
//     binomial-tree broadcast, and the paper-critical two-level hierarchical
//     all-gather / all-reduce / broadcast;
//   - an Engine that dispatches each collective to an algorithm (forced by
//     policy or chosen by an Autotuner seeded from cost-model dry runs and
//     refined by measured simulated times) and records a per-step event
//     trace;
//   - an "analytic" fallback algorithm that reproduces the legacy
//     closed-form α–β charges for backward compatibility.
//
// Data results are canonical: reductions sum contributions in rank order
// regardless of the schedule, so every rank — and every algorithm — decodes
// bit-identical bytes (the SPMD determinism contract the rest of the repo
// relies on). The schedule determines only simulated time.
package collective

import "fmt"

// LinkClass identifies the tier of the link a transfer crosses.
type LinkClass uint8

const (
	// LinkIntra is an intra-node (NVLink-class) link.
	LinkIntra LinkClass = iota
	// LinkInter is an inter-node (NIC/switch-class) link.
	LinkInter
)

// String returns the link class label used in traces and tables.
func (l LinkClass) String() string {
	if l == LinkIntra {
		return "intra"
	}
	return "inter"
}

// Event is one scheduled transfer in a collective's step trace.
type Event struct {
	// Op is the collective operation ("allgather", "allreduce", ...).
	Op string
	// Algorithm is the schedule that produced the transfer.
	Algorithm string
	// Step is the 0-based schedule step within the collective.
	Step int
	// Src and Dst are the endpoint ranks. The analytic fallback records a
	// single summary event with Src = Dst = -1.
	Src, Dst int
	// Link is the link class the transfer crossed.
	Link LinkClass
	// Bytes is the message size on the wire.
	Bytes int
	// Start and End are the transfer's simulated start/finish times.
	Start, End float64
}

// Topology describes the two-tier platform the schedules run on: P ranks
// packed GPUsPerNode to a node (the last node may be partial), each rank
// owning full-duplex NVLink ingress/egress ports, each node owning a
// full-duplex NIC shared by its ranks. Contention is not a parameter: when
// several transfers need the same port or NIC, the simulator serializes
// them on the link's occupancy.
type Topology struct {
	// P is the world size.
	P int
	// GPUsPerNode is the number of ranks per node.
	GPUsPerNode int
	// IntraAlpha/IntraBeta are the per-message latency (s) and inverse
	// bandwidth (s/byte) of intra-node links.
	IntraAlpha, IntraBeta float64
	// InterAlpha/InterBeta are the same for the per-node NIC. Beta is the
	// full NIC rate: when a node's ranks inject concurrently, the NIC
	// occupancy serializes them, so the per-rank share emerges from the
	// schedule instead of being baked into the rate.
	InterAlpha, InterBeta float64
	// Launch is the fixed software cost of issuing one collective, paid
	// once per collective by every rank.
	Launch float64
}

// Validate reports topology errors.
func (t *Topology) Validate() error {
	if t.P <= 0 || t.GPUsPerNode <= 0 {
		return fmt.Errorf("collective: invalid topology %+v", *t)
	}
	if t.IntraBeta < 0 || t.InterBeta < 0 || t.IntraAlpha < 0 || t.InterAlpha < 0 || t.Launch < 0 {
		return fmt.Errorf("collective: negative link parameter in %+v", *t)
	}
	return nil
}

// Nodes returns the node count (ceil division; the last node may hold
// fewer than GPUsPerNode ranks).
func (t *Topology) Nodes() int {
	return (t.P + t.GPUsPerNode - 1) / t.GPUsPerNode
}

// Node returns the node housing rank.
func (t *Topology) Node(rank int) int { return rank / t.GPUsPerNode }

// SameNode reports whether two ranks share a node (and hence NVLink).
func (t *Topology) SameNode(a, b int) bool { return t.Node(a) == t.Node(b) }

// Leader returns the designated leader rank of a node (its first rank).
func (t *Topology) Leader(node int) int { return node * t.GPUsPerNode }

// NodeRanks returns the ranks housed by node, in rank order.
func (t *Topology) NodeRanks(node int) []int {
	lo := node * t.GPUsPerNode
	hi := lo + t.GPUsPerNode
	if hi > t.P {
		hi = t.P
	}
	out := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, r)
	}
	return out
}

// P2PTime returns the α–β cost of one point-to-point message between two
// ranks, ignoring occupancy (used by the Worker.SendRecv primitive, where
// the pair is the only user of its links).
func (t *Topology) P2PTime(src, dst, bytes int) float64 {
	if src == dst {
		return 0
	}
	if t.SameNode(src, dst) {
		return t.IntraAlpha + t.IntraBeta*float64(bytes)
	}
	return t.InterAlpha + t.InterBeta*float64(bytes)
}
