package collective

import (
	"fmt"
	"math"
	"testing"
)

// testTopology mirrors Platform1's shape: 4 GPUs/node, NVLink-class
// intra-node links, a much slower shared NIC per node.
func testTopology(p int) *Topology {
	return &Topology{
		P: p, GPUsPerNode: 4,
		IntraAlpha: 2e-6, IntraBeta: 1 / 300e9,
		InterAlpha: 5e-6, InterBeta: 1 / 12.5e9,
		Launch: 5e-5,
	}
}

func forcedEngine(t *testing.T, p int, policy string) *Engine {
	t.Helper()
	e, err := NewEngine(testTopology(p), CostModel{}, policy)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

var worldSizes = []int{1, 2, 3, 4, 8, 16}

// refGather is the sequential reference all-gather.
func refGather(payloads [][]byte) [][]byte { return payloads }

// refReduce is the sequential reference reduce (rank-order sum).
func refReduce(vecs [][]float64) []float64 {
	sum := make([]float64, len(vecs[0]))
	for _, v := range vecs {
		for i, x := range v {
			sum[i] += x
		}
	}
	return sum
}

func mkPayloads(p int) [][]byte {
	out := make([][]byte, p)
	for r := range out {
		// Variable sizes, including an empty payload at rank 1.
		n := (r * 37) % 101
		if r == 1 {
			n = 0
		}
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(r*31 + i)
		}
		out[r] = buf
	}
	return out
}

func mkVecs(p, n int) [][]float64 {
	out := make([][]float64, p)
	for r := range out {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(r + 1 + i%7)
		}
		out[r] = v
	}
	return out
}

func starts(p int) []float64 {
	s := make([]float64, p)
	for i := range s {
		s[i] = float64(i%3) * 1e-4 // mild stragglers
	}
	return s
}

func TestAllGatherAlgorithmsMatchReference(t *testing.T) {
	for _, p := range worldSizes {
		for _, alg := range []string{AlgRing, AlgRecursiveDoubling, AlgHierarchical, "auto"} {
			t.Run(fmt.Sprintf("%s/p=%d", alg, p), func(t *testing.T) {
				e := forcedEngine(t, p, algPolicy(alg))
				payloads := mkPayloads(p)
				got, out := e.AllGather(payloads, starts(p))
				want := refGather(payloads)
				if len(got) != len(want) {
					t.Fatalf("got %d slots", len(got))
				}
				for r := range want {
					if string(got[r]) != string(want[r]) {
						t.Fatalf("slot %d mismatch", r)
					}
				}
				checkOutcome(t, p, out, starts(p))
			})
		}
	}
}

func TestAllReduceAlgorithmsMatchReference(t *testing.T) {
	for _, p := range worldSizes {
		for _, alg := range []string{AlgRing, AlgHierarchical, "auto"} {
			t.Run(fmt.Sprintf("%s/p=%d", alg, p), func(t *testing.T) {
				e := forcedEngine(t, p, algPolicy(alg))
				vecs := mkVecs(p, 97)
				sum, out := e.AllReduce(vecs, starts(p))
				want := refReduce(vecs)
				for i := range want {
					if sum[i] != want[i] { // bit-identical, rank-order sum
						t.Fatalf("elem %d: %g != %g", i, sum[i], want[i])
					}
				}
				checkOutcome(t, p, out, starts(p))
			})
		}
	}
}

func TestReduceScatterAlgorithmsMatchReference(t *testing.T) {
	for _, p := range worldSizes {
		for _, alg := range []string{AlgRing, AlgHierarchical, "auto"} {
			t.Run(fmt.Sprintf("%s/p=%d", alg, p), func(t *testing.T) {
				e := forcedEngine(t, p, algPolicy(alg))
				vecs := mkVecs(p, 53)
				shards, out := e.ReduceScatter(vecs, starts(p))
				want := refReduce(vecs)
				shard := len(want) / p
				pos := 0
				for r := 0; r < p; r++ {
					wantLen := shard
					if r == p-1 {
						wantLen = len(want) - pos
					}
					if len(shards[r]) != wantLen {
						t.Fatalf("rank %d shard length %d, want %d", r, len(shards[r]), wantLen)
					}
					for i, v := range shards[r] {
						if v != want[pos+i] {
							t.Fatalf("rank %d elem %d: %g != %g", r, i, v, want[pos+i])
						}
					}
					pos += wantLen
				}
				checkOutcome(t, p, out, starts(p))
			})
		}
	}
}

func TestBroadcastAlgorithmsDeliverRoot(t *testing.T) {
	for _, p := range worldSizes {
		for _, alg := range []string{AlgBinomial, AlgHierarchical, "auto"} {
			for _, root := range []int{0, p - 1} {
				t.Run(fmt.Sprintf("%s/p=%d/root=%d", alg, p, root), func(t *testing.T) {
					e := forcedEngine(t, p, algPolicy(alg))
					slots := make([][]byte, p)
					slots[root] = []byte("root-data")
					data, out := e.Broadcast(slots, root, starts(p))
					if string(data) != "root-data" {
						t.Fatalf("got %q", data)
					}
					checkOutcome(t, p, out, starts(p))
					// Every non-root rank must receive the payload in the
					// trace (p>1: each rank is a Dst exactly once).
					if p > 1 && out.Algorithm != "trivial" {
						recv := make([]int, p)
						for _, ev := range out.Events {
							recv[ev.Dst]++
						}
						for r := 0; r < p; r++ {
							if r != root && recv[r] != 1 {
								t.Fatalf("rank %d received %d times", r, recv[r])
							}
						}
					}
				})
			}
		}
	}
}

// algPolicy maps a test algorithm name to an engine policy string.
func algPolicy(alg string) string {
	if alg == "auto" {
		return ""
	}
	return alg
}

// checkOutcome verifies trace sanity: ends at/after the per-rank starts,
// events within the collective's span, monotone step numbering, and
// correct link classes.
func checkOutcome(t *testing.T, p int, out *Outcome, st []float64) {
	t.Helper()
	if len(out.Ends) != p {
		t.Fatalf("outcome has %d ends", len(out.Ends))
	}
	for r, e := range out.Ends {
		if e < st[r] {
			t.Fatalf("rank %d ends at %g before its start %g", r, e, st[r])
		}
	}
	topo := testTopology(p)
	lastStep := 0
	for _, ev := range out.Events {
		if ev.Step < lastStep {
			t.Fatalf("step went backwards: %d after %d", ev.Step, lastStep)
		}
		lastStep = ev.Step
		if ev.End < ev.Start {
			t.Fatalf("event ends before it starts: %+v", ev)
		}
		if ev.Src >= 0 {
			wantLink := LinkInter
			if topo.SameNode(ev.Src, ev.Dst) {
				wantLink = LinkIntra
			}
			if ev.Link != wantLink {
				t.Fatalf("event %+v has link %v, want %v", ev, ev.Link, wantLink)
			}
		}
	}
}

func TestHierarchicalBeatsFlatRingInterNode(t *testing.T) {
	// The paper's §4 hierarchical reduction: staging through NVLink node
	// leaders must strictly beat the flat ring whenever the collective
	// spans ≥ 2 nodes on Platform1-like parameters.
	for _, p := range []int{8, 12, 16} { // 2, 3, 4 nodes
		for _, bytes := range []int{1 << 16, 1 << 20, 1 << 22} {
			vecs := mkVecs(p, bytes/8)
			ringE := forcedEngine(t, p, AlgRing)
			hierE := forcedEngine(t, p, AlgHierarchical)
			st := make([]float64, p)
			_, ringOut := ringE.AllReduce(vecs, st)
			_, hierOut := hierE.AllReduce(vecs, st)
			if hierOut.MaxEnd() >= ringOut.MaxEnd() {
				t.Errorf("allreduce p=%d bytes=%d: hierarchical %.3e >= ring %.3e",
					p, bytes, hierOut.MaxEnd(), ringOut.MaxEnd())
			}
			payloads := make([][]byte, p)
			for r := range payloads {
				payloads[r] = make([]byte, bytes/p)
			}
			_, ringAG := ringE.AllGather(payloads, st)
			_, hierAG := hierE.AllGather(payloads, st)
			if hierAG.MaxEnd() >= ringAG.MaxEnd() {
				t.Errorf("allgather p=%d bytes=%d: hierarchical %.3e >= ring %.3e",
					p, bytes, hierAG.MaxEnd(), ringAG.MaxEnd())
			}
		}
	}
}

func TestSingleNodeRingUsesOnlyNVLink(t *testing.T) {
	e := forcedEngine(t, 4, AlgRing)
	vecs := mkVecs(4, 64)
	_, out := e.AllReduce(vecs, make([]float64, 4))
	if len(out.Events) == 0 {
		t.Fatal("no events")
	}
	for _, ev := range out.Events {
		if ev.Link != LinkIntra {
			t.Fatalf("intra-node collective used %v link: %+v", ev.Link, ev)
		}
	}
}

func TestContentionSerializesSharedNIC(t *testing.T) {
	// Two concurrent inter-node transfers from the same source node must
	// serialize on its NIC: the pair takes ~2x one transfer's time.
	topo := testTopology(8)
	one := newSim(topo, "x", "y", make([]float64, 8))
	one.runStep([]Transfer{{Src: 0, Dst: 4, Bytes: 1 << 20}})
	two := newSim(topo, "x", "y", make([]float64, 8))
	two.runStep([]Transfer{{Src: 0, Dst: 4, Bytes: 1 << 20}, {Src: 1, Dst: 5, Bytes: 1 << 20}})
	t1 := maxOf(one.clock) - topo.Launch
	t2 := maxOf(two.clock) - topo.Launch
	if ratio := t2 / t1; math.Abs(ratio-2) > 0.05 {
		t.Fatalf("shared-NIC pair took %.2fx one transfer, want ~2x", ratio)
	}
	// Distinct node pairs do not contend.
	three := newSim(topo, "x", "y", make([]float64, 8))
	three.runStep([]Transfer{{Src: 0, Dst: 4, Bytes: 1 << 20}, {Src: 4, Dst: 0, Bytes: 1 << 20}})
	t3 := maxOf(three.clock) - topo.Launch
	if math.Abs(t3/t1-1) > 0.05 {
		t.Fatalf("full-duplex pair took %.2fx one transfer, want ~1x", t3/t1)
	}
}

func TestAnalyticPolicyMatchesCostModel(t *testing.T) {
	costAR := func(n int) float64 { return 1e-3 }
	cost := CostModel{
		AllReduce:     costAR,
		AllGather:     func(sizes []int) float64 { return 2e-3 },
		ReduceScatter: costAR,
		Broadcast:     func(n int) float64 { return 3e-3 },
	}
	e, err := NewEngine(testTopology(8), cost, AlgAnalytic)
	if err != nil {
		t.Fatal(err)
	}
	st := starts(8)
	_, out := e.AllReduce(mkVecs(8, 16), st)
	want := maxOf(st) + 1e-3
	for r, end := range out.Ends {
		if math.Abs(end-want) > 1e-12 {
			t.Fatalf("rank %d analytic end %g, want %g", r, end, want)
		}
	}
	if out.Algorithm != AlgAnalytic {
		t.Fatalf("algorithm %q", out.Algorithm)
	}
	if len(out.Events) != 1 || out.Events[0].Src != -1 {
		t.Fatalf("analytic trace %+v", out.Events)
	}
	// Every rank sees the summary event.
	if len(out.EventsFor(3)) != 1 {
		t.Fatal("summary event not visible to all ranks")
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(&Topology{}, CostModel{}, ""); err == nil {
		t.Fatal("invalid topology accepted")
	}
	if _, err := NewEngine(testTopology(4), CostModel{}, "bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := NewEngine(testTopology(4), CostModel{}, AlgAnalytic); err == nil {
		t.Fatal("analytic policy without cost model accepted")
	}
}

func TestTrivialCollectivesAreFreeSyncPoints(t *testing.T) {
	e := forcedEngine(t, 4, "")
	st := []float64{1, 2, 5, 3}
	_, out := e.AllGather(make([][]byte, 4), st) // all-empty payloads
	for r, end := range out.Ends {
		if end != 5 {
			t.Fatalf("rank %d end %g, want sync to 5", r, end)
		}
	}
	if len(out.Events) != 0 {
		t.Fatal("trivial collective produced events")
	}
	one := forcedEngine(t, 1, "")
	_, out = one.AllReduce([][]float64{{1, 2}}, []float64{7})
	if out.Ends[0] != 7 {
		t.Fatalf("single-rank collective cost time: %g", out.Ends[0])
	}
}

func TestTopologyHelpers(t *testing.T) {
	topo := testTopology(10) // 3 nodes: 4+4+2
	if topo.Nodes() != 3 {
		t.Fatalf("nodes = %d", topo.Nodes())
	}
	if topo.Leader(2) != 8 {
		t.Fatalf("leader(2) = %d", topo.Leader(2))
	}
	if got := topo.NodeRanks(2); len(got) != 2 || got[0] != 8 || got[1] != 9 {
		t.Fatalf("node 2 ranks %v", got)
	}
	if !topo.SameNode(4, 7) || topo.SameNode(3, 4) {
		t.Fatal("SameNode wrong")
	}
	if topo.P2PTime(0, 0, 100) != 0 {
		t.Fatal("self P2P not free")
	}
	if topo.P2PTime(0, 1, 1<<20) >= topo.P2PTime(0, 4, 1<<20) {
		t.Fatal("intra P2P not faster than inter")
	}
}
