// Package filter implements the lossy filter stage of COMPSO's compression
// pipeline (§4.3, step 1): values whose magnitude falls below the filter
// error bound eb_f are dropped and recorded as ones in a bitmap; the
// remaining values flow on to the stochastic-rounding quantizer. Because
// K-FAC gradients concentrate most of their mass near zero, the bitmap plus
// its lossless encoding is where most of COMPSO's compression-ratio
// advantage over pure quantization comes from.
package filter

import (
	"fmt"
	"math"
)

// Apply partitions src by the filter bound: elements with |v| < ebf are
// marked 1 in the returned bitmap (LSB-first within each byte) and omitted
// from kept; the others are marked 0 and appended to kept in order.
// Dropping a filtered value introduces an absolute error below ebf, so the
// stage respects the same error-bound contract as the quantizer.
func Apply(src []float32, ebf float64) (bitmap []byte, kept []float32) {
	bitmap = make([]byte, (len(src)+7)/8)
	kept = make([]float32, 0, len(src)/4)
	for i, v := range src {
		if math.Abs(float64(v)) < ebf {
			bitmap[i/8] |= 1 << (i % 8)
		} else {
			kept = append(kept, v)
		}
	}
	return bitmap, kept
}

// Restore rebuilds a length-n value slice from a bitmap and the kept
// values: filtered positions become 0, the rest consume kept in order.
// It returns an error if the bitmap is too short for n or if the number of
// zero bits does not match len(kept).
func Restore(bitmap []byte, n int, kept []float32) ([]float32, error) {
	if len(bitmap) < (n+7)/8 {
		return nil, fmt.Errorf("filter: bitmap of %d bytes too short for %d values", len(bitmap), n)
	}
	out := make([]float32, n)
	k := 0
	for i := 0; i < n; i++ {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			continue // filtered → zero
		}
		if k >= len(kept) {
			return nil, fmt.Errorf("filter: bitmap expects more than %d kept values", len(kept))
		}
		out[i] = kept[k]
		k++
	}
	if k != len(kept) {
		return nil, fmt.Errorf("filter: %d kept values unused (bitmap expects %d)", len(kept)-k, k)
	}
	return out, nil
}

// Count returns the number of filtered (dropped) elements among the first
// n bits of the bitmap.
func Count(bitmap []byte, n int) int {
	count := 0
	for i := 0; i < n; i++ {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			count++
		}
	}
	return count
}
