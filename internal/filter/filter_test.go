package filter

import (
	"math"
	"testing"
	"testing/quick"

	"compso/internal/xrand"
)

func TestApplyRestoreRoundTrip(t *testing.T) {
	src := []float32{0.001, -0.5, 0.0001, 0.3, -0.002, 0.9}
	const ebf = 4e-3
	bitmap, kept := Apply(src, ebf)
	if len(kept) != 3 {
		t.Fatalf("kept %d values, want 3", len(kept))
	}
	out, err := Restore(bitmap, len(src), kept)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range src {
		if math.Abs(float64(v)) < ebf {
			if out[i] != 0 {
				t.Fatalf("filtered position %d = %g, want 0", i, out[i])
			}
		} else if out[i] != v {
			t.Fatalf("kept position %d = %g, want %g", i, out[i], v)
		}
	}
}

func TestApplyErrorBound(t *testing.T) {
	rng := xrand.NewSeeded(1)
	src := make([]float32, 50000)
	xrand.KFACGradient(rng, src, 1.0)
	const ebf = 4e-3
	bitmap, kept := Apply(src, ebf)
	out, err := Restore(bitmap, len(src), kept)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if e := math.Abs(float64(out[i] - src[i])); e >= ebf {
			t.Fatalf("filter error %g at %d >= bound %g", e, i, ebf)
		}
	}
}

func TestCount(t *testing.T) {
	src := []float32{0, 1, 0, 1, 0}
	bitmap, _ := Apply(src, 0.5)
	if got := Count(bitmap, len(src)); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
}

func TestApplyEmptyInput(t *testing.T) {
	bitmap, kept := Apply(nil, 1)
	if len(bitmap) != 0 || len(kept) != 0 {
		t.Fatal("nonempty output for empty input")
	}
	out, err := Restore(bitmap, 0, kept)
	if err != nil || len(out) != 0 {
		t.Fatalf("Restore empty: %v, len %d", err, len(out))
	}
}

func TestApplyBoundaryValueIsKept(t *testing.T) {
	// The filter drops strictly-below-bound values; |v| == ebf is kept.
	bitmap, kept := Apply([]float32{4e-3}, 4e-3)
	if Count(bitmap, 1) != 0 || len(kept) != 1 {
		t.Fatal("boundary value was filtered")
	}
}

func TestRestoreErrors(t *testing.T) {
	src := []float32{0.001, 0.5, 0.002}
	bitmap, kept := Apply(src, 4e-3)
	if _, err := Restore(bitmap[:0], len(src), kept); err == nil {
		t.Fatal("short bitmap accepted")
	}
	if _, err := Restore(bitmap, len(src), nil); err == nil {
		t.Fatal("missing kept values accepted")
	}
	if _, err := Restore(bitmap, len(src), append(kept, 1, 2)); err == nil {
		t.Fatal("excess kept values accepted")
	}
}

func TestHighFilterMassOnKFACGradients(t *testing.T) {
	// COMPSO's CR advantage depends on the filter removing a large
	// fraction of K-FAC gradient values at eb_f = 4e-3.
	rng := xrand.NewSeeded(2)
	src := make([]float32, 100000)
	xrand.KFACGradient(rng, src, 1.0)
	bitmap, _ := Apply(src, 4e-3)
	frac := float64(Count(bitmap, len(src))) / float64(len(src))
	if frac < 0.4 {
		t.Fatalf("filter removed only %.1f%%, want >= 40%%", frac*100)
	}
}

func TestApplyRestoreProperty(t *testing.T) {
	f := func(raw []float32, ebMilli uint8) bool {
		eb := float64(ebMilli)/255*0.1 + 1e-6
		// Replace NaN/Inf, which gradients never contain.
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				raw[i] = 0
			}
		}
		bitmap, kept := Apply(raw, eb)
		out, err := Restore(bitmap, len(raw), kept)
		if err != nil {
			return false
		}
		for i := range raw {
			if math.Abs(float64(raw[i])) < eb {
				if out[i] != 0 {
					return false
				}
			} else if out[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
