package compso_test

import (
	"fmt"

	"compso"
)

// ExampleNewCompressor demonstrates the basic compress/decompress cycle
// with the error-bound guarantee.
func ExampleNewCompressor() {
	// A gradient with COMPSO-friendly structure: near-zero bulk + outliers.
	gradient := make([]float32, 10000)
	rng := compso.NewRand(7)
	for i := range gradient {
		if rng.Float64() < 0.9 {
			gradient[i] = float32(rng.NormFloat64() * 0.001)
		} else {
			gradient[i] = float32(rng.NormFloat64() * 0.1)
		}
	}

	c := compso.NewCompressor(42)
	blob, err := c.Compress(gradient)
	if err != nil {
		panic(err)
	}
	restored, err := c.Decompress(blob)
	if err != nil {
		panic(err)
	}

	maxErr := 0.0
	for i := range gradient {
		e := float64(restored[i] - gradient[i])
		if e < 0 {
			e = -e
		}
		if e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("values restored: %d\n", len(restored))
	fmt.Printf("error within bound: %v\n", maxErr <= c.MaxError())
	// Output:
	// values restored: 10000
	// error within bound: true
}

// ExampleNewController shows Algorithm 1's stage transitions.
func ExampleNewController() {
	schedule := &compso.StepLR{BaseLR: 0.1, Drops: []int{25}, Gamma: 0.1}
	ctrl := compso.NewController(schedule, 100)

	early := ctrl.StrategyAt(0)
	late := ctrl.StrategyAt(30)
	fmt.Printf("before LR drop: filter=%v eb=%.0e\n", early.FilterEnabled, early.EBQuant)
	fmt.Printf("after LR drop:  filter=%v eb=%.0e\n", late.FilterEnabled, late.EBQuant)
	// Output:
	// before LR drop: filter=true eb=4e-03
	// after LR drop:  filter=false eb=2e-03
}

// ExampleEndToEndSpeedup reproduces the paper's §4.4 example: 50%
// communication share and a 10x communication speedup project to 1.8x
// end to end.
func ExampleEndToEndSpeedup() {
	fmt.Printf("%.1fx\n", compso.EndToEndSpeedup(0.5, 10))
	// Output:
	// 1.8x
}

// ExampleModelByName inspects an evaluation workload profile.
func ExampleModelByName() {
	p, err := compso.ModelByName("ResNet-50")
	if err != nil {
		panic(err)
	}
	fmt.Printf("layers: %d\n", len(p.Layers))
	fmt.Printf("params: %dM\n", p.TotalParams()/1e6)
	// Output:
	// layers: 54
	// params: 25M
}
