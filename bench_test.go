// Top-level benchmarks: one per table and figure of the paper's evaluation
// (regenerating the same rows/series), plus per-compressor micro-benchmarks
// on K-FAC gradient data.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The convergence benchmarks (Figure 3, Figure 6, Table 1) train proxy
// models and are intentionally run at reduced iteration budgets here; use
// cmd/compso-bench for paper-scale budgets.
package compso_test

import (
	"testing"

	"compso"
	"compso/internal/compress"
	"compso/internal/experiments"
	"compso/internal/xrand"
)

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Figure1()
		if len(rows) != 12 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure3(30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, _ := experiments.Figure5()
		if len(results) != 6 {
			b.Fatalf("%d results", len(results))
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure6(20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table1(30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure8(false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure9(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGradient returns a 1M-element synthetic K-FAC gradient.
func benchGradient() []float32 {
	src := make([]float32, 1<<20)
	xrand.KFACGradient(xrand.NewSeeded(3), src, 1.0)
	return src
}

func benchCompressor(b *testing.B, c compso.Compressor) {
	b.Helper()
	src := benchGradient()
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	var blob []byte
	for i := 0; i < b.N; i++ {
		var err error
		blob, err = c.Compress(src)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(compso.Ratio(len(src), blob), "CR")
}

func BenchmarkCompressCOMPSO(b *testing.B) { benchCompressor(b, compso.NewCompressor(1)) }
func BenchmarkCompressQSGD8(b *testing.B)  { benchCompressor(b, compso.NewQSGD(8, 2)) }
func BenchmarkCompressSZ(b *testing.B)     { benchCompressor(b, compso.NewSZ(4e-3)) }
func BenchmarkCompressCocktail(b *testing.B) {
	benchCompressor(b, compso.NewCocktailSGD(0.2, 8, 4))
}

// BenchmarkCompressCOMPSOReference measures the preserved multi-pass COMPSO
// pipeline (the pre-fusion implementation in internal/compress/reference.go)
// on the same input as BenchmarkCompressCOMPSO — the before/after pair the
// perf harness commits to BENCH_PR5.json.
func BenchmarkCompressCOMPSOReference(b *testing.B) {
	c := compress.NewCOMPSO(1)
	src := benchGradient()
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReferenceCompress(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressCOMPSO(b *testing.B) {
	c := compso.NewCompressor(5)
	src := benchGradient()
	blob, err := c.Compress(src)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompressCOMPSOReference is the multi-pass decode half of the
// before/after pair (plane join, dequantize and filter-restore each through
// their own materialized buffer).
func BenchmarkDecompressCOMPSOReference(b *testing.B) {
	c := compress.NewCOMPSO(5)
	src := benchGradient()
	blob, err := c.Compress(src)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReferenceDecompress(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecANSOnGradientPlanes(b *testing.B) {
	// The hot path of COMPSO's back-end: ANS over the low byte plane of
	// quantized gradients.
	codec, err := compso.CodecByName("ANS")
	if err != nil {
		b.Fatal(err)
	}
	src := benchGradient()
	plane := make([]byte, len(src))
	for i, v := range src {
		plane[i] = byte(int32(v / 4e-3))
	}
	b.SetBytes(int64(len(plane)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := codec.Encode(plane)
		if _, err := codec.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Ablations(); err != nil {
			b.Fatal(err)
		}
	}
}
