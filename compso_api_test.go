package compso_test

import (
	"bytes"
	"errors"
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"compso"
	"compso/internal/obs"
)

// TestFacadeNewOptions exercises compso.New with every functional option,
// including a compress/decompress round trip per configuration.
func TestFacadeNewOptions(t *testing.T) {
	src := gradientSample(20000, 11)

	t.Run("defaults match NewCompressor", func(t *testing.T) {
		a, _ := compso.New(compso.WithSeed(3)).Compress(src)
		b, _ := compso.NewCompressor(3).Compress(src)
		if !bytes.Equal(a, b) {
			t.Fatal("New() and NewCompressor produce different streams for the same seed")
		}
	})

	t.Run("WithSeed is deterministic", func(t *testing.T) {
		a, _ := compso.New(compso.WithSeed(5)).Compress(src)
		b, _ := compso.New(compso.WithSeed(5)).Compress(src)
		c, _ := compso.New(compso.WithSeed(6)).Compress(src)
		if !bytes.Equal(a, b) {
			t.Fatal("same seed, different streams")
		}
		if bytes.Equal(a, c) {
			t.Fatal("different seeds, identical streams")
		}
	})

	t.Run("WithErrorBound", func(t *testing.T) {
		c := compso.New(compso.WithSeed(1), compso.WithErrorBound(1e-3), compso.WithFilterBound(0))
		if c.EBQuant != 1e-3 || c.FilterEnabled {
			t.Fatalf("got ebq=%g filter=%v", c.EBQuant, c.FilterEnabled)
		}
		blob, err := c.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		for i := range src {
			if e := math.Abs(float64(out[i] - src[i])); e > 1e-3+1e-7 {
				t.Fatalf("error %g exceeds bound 1e-3", e)
			}
		}
	})

	t.Run("WithFilterBound", func(t *testing.T) {
		c := compso.New(compso.WithSeed(1), compso.WithFilterBound(8e-3))
		if !c.FilterEnabled || c.EBFilter != 8e-3 {
			t.Fatalf("got filter=%v ebf=%g", c.FilterEnabled, c.EBFilter)
		}
		if blob, err := c.Compress(src); err != nil {
			t.Fatal(err)
		} else if _, err := c.Decompress(blob); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("WithCodec", func(t *testing.T) {
		codec, err := compso.CodecByName("Zstd")
		if err != nil {
			t.Fatal(err)
		}
		c := compso.New(compso.WithSeed(1), compso.WithCodec(codec))
		blob, err := c.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(src) {
			t.Fatalf("%d values", len(out))
		}
	})

	t.Run("WithObserver", func(t *testing.T) {
		o := compso.NewObserver()
		c := compso.New(compso.WithSeed(1), compso.WithObserver(o))
		if _, err := c.Compress(src); err != nil {
			t.Fatal(err)
		}
		snap := o.Snapshot()
		if snap.Counters["compress/calls"] != 1 {
			t.Fatalf("compress/calls = %g", snap.Counters["compress/calls"])
		}
		if h, ok := snap.Histograms["compress/ratio"]; !ok || h.Count != 1 || h.Mean <= 1 {
			t.Fatalf("compress/ratio histogram %+v", snap.Histograms["compress/ratio"])
		}
		if h, ok := snap.Histograms["compress/filter_hit_rate"]; !ok || h.Mean <= 0 || h.Mean > 1 {
			t.Fatalf("filter_hit_rate histogram %+v", snap.Histograms["compress/filter_hit_rate"])
		}
	})
}

// TestFacadePlatformRegistry checks the name-based platform lookup against
// the legacy constructors.
func TestFacadePlatformRegistry(t *testing.T) {
	want := []string{"slingshot10", "slingshot11"}
	if got := compso.Platforms(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Platforms() = %v, want %v", got, want)
	}
	p1, err := compso.PlatformByName("slingshot10")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != compso.Platform1() {
		t.Fatal("slingshot10 does not match Platform1()")
	}
	p2, err := compso.PlatformByName("slingshot11")
	if err != nil {
		t.Fatal(err)
	}
	if p2 != compso.Platform2() {
		t.Fatal("slingshot11 does not match Platform2()")
	}
}

// TestFacadeSentinelErrors is the table-driven errors.Is check for the
// facade's lookup and decode paths.
func TestFacadeSentinelErrors(t *testing.T) {
	badDecode := func() error {
		_, err := compso.NewCompressor(1).Decompress([]byte{0x00, 0x01, 0x02})
		return err
	}
	cases := []struct {
		name     string
		err      func() error
		sentinel error
	}{
		{"unknown codec", func() error { _, err := compso.CodecByName("nope"); return err }, compso.ErrUnknownCodec},
		{"unknown model", func() error { _, err := compso.ModelByName("nope"); return err }, compso.ErrUnknownModel},
		{"unknown platform", func() error { _, err := compso.PlatformByName("nope"); return err }, compso.ErrUnknownPlatform},
		{"corrupt blob", badDecode, compso.ErrCorruptBlob},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err()
			if err == nil {
				t.Fatal("no error")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("errors.Is(%v, sentinel) = false", err)
			}
		})
	}
	// Known names must not error.
	if _, err := compso.CodecByName("ANS"); err != nil {
		t.Fatal(err)
	}
	if _, err := compso.ModelByName("ResNet-50"); err != nil {
		t.Fatal(err)
	}
	if _, err := compso.PlatformByName("slingshot10"); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeProxies constructs every proxy task builder once.
func TestFacadeProxies(t *testing.T) {
	rng := compso.NewRand(3)
	tasks := []*compso.ProxyTask{
		compso.ProxyResNet(rng, 3),
		compso.ProxyMaskRCNN(rng, 3),
		compso.ProxyBERT(rng, 3),
		compso.ProxyGPT(rng, 3),
	}
	squad, _ := compso.ProxySQuAD(rng, 3)
	tasks = append(tasks, squad)
	for i, task := range tasks {
		if task == nil || task.Model == nil || len(task.Model.Params()) == 0 {
			t.Fatalf("proxy %d has no parameters", i)
		}
	}
}

// TestFacadeSaveLoadModel round-trips a model checkpoint.
func TestFacadeSaveLoadModel(t *testing.T) {
	a := compso.ProxyResNet(compso.NewRand(4), 4)
	b := compso.ProxyResNet(compso.NewRand(5), 5) // different init
	var buf bytes.Buffer
	if err := compso.SaveModel(a.Model, &buf); err != nil {
		t.Fatal(err)
	}
	if err := compso.LoadModel(b.Model, &buf); err != nil {
		t.Fatal(err)
	}
	ap, bp := a.Model.Params(), b.Model.Params()
	for i := range ap {
		for j := range ap[i].W.Data {
			if ap[i].W.Data[j] != bp[i].W.Data[j] {
				t.Fatal("loaded parameters differ from saved")
			}
		}
	}
}

// TestFacadeShampoo exercises the alternative second-order optimizer.
func TestFacadeShampoo(t *testing.T) {
	task := compso.ProxyResNet(compso.NewRand(6), 6)
	sh := compso.NewShampoo(task.Model, 1e-4, 5)
	x, y := task.Data.Sample(compso.NewRand(7), task.Batch)
	logits := task.Model.Forward(x, true)
	_, grad := task.Loss.Loss(logits, y)
	task.Model.ZeroGrad()
	task.Model.Backward(grad)
	if sh.NumLayers() == 0 {
		t.Fatal("Shampoo found no matrix layers")
	}
	if err := sh.Step(0.01); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeObservedTraining runs a small instrumented training job through
// the facade: TrainConfig.Obs is populated, the result carries a snapshot,
// the trace exports and validates, and the collective span sums reconcile
// with the AlgSeconds attribution.
func TestFacadeObservedTraining(t *testing.T) {
	sched := &compso.StepLR{BaseLR: 0.03, Drops: []int{10}, Gamma: 0.1}
	rec := compso.NewObserver(compso.WithMaxSpans(1<<16), compso.WithTransferSpans(true))
	const workers = 4
	res, err := compso.Train(compso.TrainConfig{
		BuildTask: func(rng *rand.Rand) *compso.ProxyTask {
			return compso.ProxyResNet(rng, 21)
		},
		Workers:  workers,
		Platform: compso.Platform1(),
		Iters:    8,
		Seed:     21,
		Schedule: sched,
		UseKFAC:  true,
		KFAC:     compso.DefaultKFAC(),
		NewCompressor: func(rank int) compso.Compressor {
			return compso.New(compso.WithSeed(int64(rank) + 30))
		},
		Controller:   compso.NewController(sched, 8),
		AggregationM: 2,
		Obs:          rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("no metrics snapshot on result")
	}
	snap := res.Metrics
	for _, cat := range []obs.Category{obs.CatStep, obs.CatPhase, obs.CatCollective, obs.CatCompress, obs.CatPrecondition} {
		if snap.SpanSeconds()[cat] <= 0 && len(snap.SpansFor(cat)) == 0 {
			t.Fatalf("no spans in category %q (have %v)", cat, snap.Categories())
		}
	}
	perWorker := map[string]float64{}
	for k, v := range snap.AlgSeconds() {
		perWorker[k] = v / workers
	}
	if err := obs.ReconcileAlgSeconds(perWorker, res.AlgSeconds, 0.01); err != nil {
		t.Fatalf("reconciliation: %v", err)
	}
	if snap.Counters["train/steps"] != 8 {
		t.Fatalf("train/steps = %g", snap.Counters["train/steps"])
	}
	var buf bytes.Buffer
	if err := snap.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("trace validation: %v", err)
	}
	buf.Reset()
	if err := snap.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty metrics CSV")
	}
}

// TestFacadeCrashRecovery drives the fault-tolerance surface end to end
// through the facade: a run that loses a worker mid-step recovers from its
// checkpoint directory and reproduces the uninterrupted twin bit-exactly,
// LatestCheckpoint finds the newest complete file, and WithResume warm-starts
// a fresh process from it to the same final loss.
func TestFacadeCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	base := func() compso.TrainConfig {
		return compso.TrainConfig{
			BuildTask: func(rng *rand.Rand) *compso.ProxyTask {
				return compso.ProxyResNet(rng, 51)
			},
			Workers:  4,
			Platform: compso.Platform1(),
			Iters:    8,
			Seed:     51,
			Schedule: &compso.StepLR{BaseLR: 0.03, Drops: []int{6}, Gamma: 0.1},
			NewCompressor: func(rank int) compso.Compressor {
				return compso.New(compso.WithSeed(51))
			},
			AggregationM: 2,
		}
	}
	plain, err := compso.TrainWith(base(), compso.WithCheckpoint(3))
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := compso.TrainWith(base(),
		compso.WithCheckpoint(3),
		compso.WithCheckpointDir(dir),
		compso.WithMaxRestarts(2),
		compso.WithFaults(&compso.FaultPlan{Seed: 7, Crashes: []compso.WorkerCrash{
			{Rank: 1, Point: compso.CrashMidStep, Step: 5},
		}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if crashed.Restarts != 1 {
		t.Fatalf("got %d restarts, want 1", crashed.Restarts)
	}
	if crashed.FinalLoss != plain.FinalLoss || crashed.MeanCR != plain.MeanCR {
		t.Fatalf("recovered run diverged: loss %v vs %v, CR %v vs %v",
			crashed.FinalLoss, plain.FinalLoss, crashed.MeanCR, plain.MeanCR)
	}
	latest, err := compso.LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest == "" {
		t.Fatal("no checkpoint found in directory")
	}
	resumed, err := compso.TrainWith(base(),
		compso.WithCheckpoint(3),
		compso.WithResume(latest),
	)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.FinalLoss != plain.FinalLoss {
		t.Fatalf("resumed run diverged: loss %v vs %v", resumed.FinalLoss, plain.FinalLoss)
	}
}

// TestFacadeObserverDisabledIsInert confirms the nil-observer contract at
// the facade level: a run with and without an observer produces bit-equal
// convergence results.
func TestFacadeObserverDisabledIsInert(t *testing.T) {
	run := func(rec *compso.Observer) *compso.TrainResult {
		sched := &compso.StepLR{BaseLR: 0.03, Drops: []int{10}, Gamma: 0.1}
		res, err := compso.Train(compso.TrainConfig{
			BuildTask: func(rng *rand.Rand) *compso.ProxyTask {
				return compso.ProxyResNet(rng, 31)
			},
			Workers:  4,
			Platform: compso.Platform1(),
			Iters:    6,
			Seed:     31,
			Schedule: sched,
			UseKFAC:  true,
			KFAC:     compso.DefaultKFAC(),
			NewCompressor: func(rank int) compso.Compressor {
				return compso.New(compso.WithSeed(int64(rank) + 40))
			},
			AggregationM: 2,
			Obs:          rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	observed := run(compso.NewObserver(compso.WithTransferSpans(true)))
	if !reflect.DeepEqual(plain.Losses, observed.Losses) {
		t.Fatalf("observer changed losses: %v vs %v", plain.Losses, observed.Losses)
	}
	for k, v := range plain.AlgSeconds {
		if math.Abs(observed.AlgSeconds[k]-v) > 1e-12 {
			t.Fatalf("observer changed AlgSeconds[%s]: %g vs %g", k, v, observed.AlgSeconds[k])
		}
	}
}
