package compso

import (
	"fmt"
	"strings"

	"compso/internal/compress"
	"compso/internal/obs"
)

// Observer records simulated-time spans and metrics (see NewObserver). A
// nil Observer disables instrumentation at zero cost.
type Observer = obs.Recorder

// ObserverOption configures an Observer.
type ObserverOption = obs.Option

// Snapshot is an Observer's state at a point in time: spans plus counter,
// gauge and histogram values.
type Snapshot = obs.Snapshot

// NewObserver returns an observability recorder to pass to TrainConfig.Obs
// (or compso.New via WithObserver). Options: WithMaxSpans bounds span
// retention; WithTransferSpans adds per-transfer link-occupancy spans.
func NewObserver(opts ...ObserverOption) *Observer { return obs.NewRecorder(opts...) }

// WithMaxSpans bounds how many spans an Observer retains (default 262144);
// further spans are counted as dropped.
func WithMaxSpans(n int) ObserverOption { return obs.WithMaxSpans(n) }

// WithTransferSpans enables per-transfer link-occupancy spans in the
// collective engine's stepped simulations (off by default: they are the
// highest-volume span source).
func WithTransferSpans(enabled bool) ObserverOption { return obs.WithTransferSpans(enabled) }

// Option configures a COMPSO compressor built by New.
type Option func(*compressorConfig)

// compressorConfig accumulates New's options before construction.
type compressorConfig struct {
	seed        int64
	errorBound  float64
	filterBound float64
	filterSet   bool
	codec       Codec
	observer    *Observer

	family     string
	rank       int
	rows, cols int
	bits       int
	keep       float64
	relEB      float64
	ef         bool
}

// WithSeed sets the deterministic stochastic-rounding stream. Distributed
// workers should derive distinct seeds per rank (e.g. seed*1000+rank) so
// their rounding decisions decorrelate.
func WithSeed(seed int64) Option {
	return func(c *compressorConfig) { c.seed = seed }
}

// WithErrorBound sets the stochastic-rounding quantizer bound eb_q
// (default 4e-3, the paper's aggressive setting).
func WithErrorBound(eb float64) Option {
	return func(c *compressorConfig) { c.errorBound = eb }
}

// WithFilterBound sets the filter bound eb_f and enables the filter;
// passing 0 disables the filter (the conservative SR-only strategy).
func WithFilterBound(eb float64) Option {
	return func(c *compressorConfig) {
		c.filterBound = eb
		c.filterSet = true
	}
}

// WithCodec selects the lossless back-end encoder (default ANS; see
// Codecs and CodecByName for the Table 2 set).
func WithCodec(codec Codec) Option {
	return func(c *compressorConfig) { c.codec = codec }
}

// WithObserver attaches an observability recorder: each Compress call
// feeds the observer's "compress/ratio" and "compress/filter_hit_rate"
// histograms and "compress/calls" counter. For full simulated-time spans,
// pass the same observer to TrainConfig.Obs.
func WithObserver(o *Observer) Option {
	return func(c *compressorConfig) { c.observer = o }
}

// WithFamily selects the compressor family for NewCompressorFor (see
// Families for the registry: "compso", "qsgd", "sz", "cocktail",
// "powersgd"). Names are matched case-insensitively.
func WithFamily(name string) Option {
	return func(c *compressorConfig) { c.family = name }
}

// WithRank sets the powersgd factorization rank k (default 4). Wire
// volume scales with k·(rows+cols), reconstruction quality with k.
func WithRank(k int) Option {
	return func(c *compressorConfig) { c.rank = k }
}

// WithShape pins the powersgd 2D gradient view (e.g. a layer's natural
// ADim×GDim). Unset, the family uses a near-square reshape of the first
// gradient's length.
func WithShape(rows, cols int) Option {
	return func(c *compressorConfig) { c.rows, c.cols = rows, cols }
}

// WithBits sets the quantization width for the qsgd and cocktail families
// (defaults 4 and 8).
func WithBits(bits int) Option {
	return func(c *compressorConfig) { c.bits = bits }
}

// WithKeepFraction sets the cocktail family's top-k keep fraction
// (default 0.04).
func WithKeepFraction(f float64) Option {
	return func(c *compressorConfig) { c.keep = f }
}

// WithRelErrorBound sets the sz family's range-relative error bound
// (default 1e-3).
func WithRelErrorBound(eb float64) Option {
	return func(c *compressorConfig) { c.relEB = eb }
}

// WithErrorFeedback wraps the built compressor with an error-feedback
// residual — the uniform EF composition for every lossy family. EF
// streams must send same-length gradients on every call (the length is
// pinned on first use).
func WithErrorFeedback() Option {
	return func(c *compressorConfig) { c.ef = true }
}

// registryOptions lowers the accumulated functional options to the
// internal registry's option struct, preserving New's historical
// semantics for the filter toggle (a non-positive filter bound disables
// the stage).
func (c *compressorConfig) registryOptions() compress.Options {
	o := compress.Options{
		Seed:    c.seed,
		EBQuant: max(c.errorBound, 0),
		Codec:   c.codec,
		Obs:     c.observer,
		Bits:    c.bits,
		Keep:    c.keep,
		RelEB:   c.relEB,
		Rank:    c.rank,
		Rows:    c.rows,
		Cols:    c.cols,
	}
	if c.filterSet {
		enabled := c.filterBound > 0
		o.Filter = &enabled
		if enabled {
			o.EBFilter = c.filterBound
		}
	}
	o.ErrorFeedback = c.ef
	return o
}

// New builds a COMPSO compressor from functional options, resolving
// through the family registry. With no options it matches
// NewCompressor(0): filter+SR at the paper's default bounds (eb_f = eb_q =
// 4e-3) with the ANS back-end and a deterministic stochastic-rounding
// stream.
//
// New always returns the concrete *COMPSO type; it panics when given
// WithFamily for a different family or WithErrorFeedback (which would
// change the return type) — use NewCompressorFor for those.
func New(opts ...Option) *COMPSO {
	cfg := compressorConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.family != "" {
		if f, err := compress.CanonicalFamily(cfg.family); err != nil || f != "compso" {
			panic("compso.New builds the COMPSO family; use NewCompressorFor(" + cfg.family + ", ...)")
		}
	}
	if cfg.ef {
		panic("compso.New returns *COMPSO; use NewCompressorFor for error-feedback wrapping")
	}
	c, err := compress.ByName("compso", cfg.registryOptions())
	if err != nil {
		panic("compso.New: " + err.Error())
	}
	return c.(*COMPSO)
}

// NewCompressorFor builds any registered compressor family by name from
// functional options — the registry-backed replacement for the ad-hoc
// NewQSGD/NewSZ/NewCocktailSGD constructors:
//
//	c, err := compso.NewCompressorFor("powersgd",
//		compso.WithRank(4), compso.WithSeed(7), compso.WithErrorFeedback())
//
// The family argument may be empty when WithFamily is among the options;
// an explicit argument and a conflicting WithFamily is an error. Unknown
// names return an error wrapping ErrUnknownFamily listing Families().
// Builds are bit-identical to direct construction with the same
// parameters, and WithErrorFeedback composes uniformly on every family.
func NewCompressorFor(family string, opts ...Option) (Compressor, error) {
	cfg := compressorConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	switch {
	case family == "":
		family = cfg.family
		if family == "" {
			family = "compso"
		}
	case cfg.family != "" && !strings.EqualFold(cfg.family, family):
		return nil, fmt.Errorf("compso: family %q conflicts with WithFamily(%q)", family, cfg.family)
	}
	return compress.ByName(family, cfg.registryOptions())
}
