package compso

import (
	"compso/internal/compress"
	"compso/internal/obs"
)

// Observer records simulated-time spans and metrics (see NewObserver). A
// nil Observer disables instrumentation at zero cost.
type Observer = obs.Recorder

// ObserverOption configures an Observer.
type ObserverOption = obs.Option

// Snapshot is an Observer's state at a point in time: spans plus counter,
// gauge and histogram values.
type Snapshot = obs.Snapshot

// NewObserver returns an observability recorder to pass to TrainConfig.Obs
// (or compso.New via WithObserver). Options: WithMaxSpans bounds span
// retention; WithTransferSpans adds per-transfer link-occupancy spans.
func NewObserver(opts ...ObserverOption) *Observer { return obs.NewRecorder(opts...) }

// WithMaxSpans bounds how many spans an Observer retains (default 262144);
// further spans are counted as dropped.
func WithMaxSpans(n int) ObserverOption { return obs.WithMaxSpans(n) }

// WithTransferSpans enables per-transfer link-occupancy spans in the
// collective engine's stepped simulations (off by default: they are the
// highest-volume span source).
func WithTransferSpans(enabled bool) ObserverOption { return obs.WithTransferSpans(enabled) }

// Option configures a COMPSO compressor built by New.
type Option func(*compressorConfig)

// compressorConfig accumulates New's options before construction.
type compressorConfig struct {
	seed        int64
	errorBound  float64
	filterBound float64
	filterSet   bool
	codec       Codec
	observer    *Observer
}

// WithSeed sets the deterministic stochastic-rounding stream. Distributed
// workers should derive distinct seeds per rank (e.g. seed*1000+rank) so
// their rounding decisions decorrelate.
func WithSeed(seed int64) Option {
	return func(c *compressorConfig) { c.seed = seed }
}

// WithErrorBound sets the stochastic-rounding quantizer bound eb_q
// (default 4e-3, the paper's aggressive setting).
func WithErrorBound(eb float64) Option {
	return func(c *compressorConfig) { c.errorBound = eb }
}

// WithFilterBound sets the filter bound eb_f and enables the filter;
// passing 0 disables the filter (the conservative SR-only strategy).
func WithFilterBound(eb float64) Option {
	return func(c *compressorConfig) {
		c.filterBound = eb
		c.filterSet = true
	}
}

// WithCodec selects the lossless back-end encoder (default ANS; see
// Codecs and CodecByName for the Table 2 set).
func WithCodec(codec Codec) Option {
	return func(c *compressorConfig) { c.codec = codec }
}

// WithObserver attaches an observability recorder: each Compress call
// feeds the observer's "compress/ratio" and "compress/filter_hit_rate"
// histograms and "compress/calls" counter. For full simulated-time spans,
// pass the same observer to TrainConfig.Obs.
func WithObserver(o *Observer) Option {
	return func(c *compressorConfig) { c.observer = o }
}

// New builds a COMPSO compressor from functional options. With no options
// it matches NewCompressor(0): filter+SR at the paper's default bounds
// (eb_f = eb_q = 4e-3) with the ANS back-end and a deterministic
// stochastic-rounding stream.
//
// New is the primary constructor; the positional NewCompressor remains as
// a thin wrapper for existing callers.
func New(opts ...Option) *COMPSO {
	cfg := compressorConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	comp := compress.NewCOMPSO(cfg.seed)
	if cfg.errorBound > 0 {
		comp.EBQuant = cfg.errorBound
	}
	if cfg.filterSet {
		if cfg.filterBound > 0 {
			comp.EBFilter = cfg.filterBound
			comp.FilterEnabled = true
		} else {
			comp.FilterEnabled = false
		}
	}
	if cfg.codec != nil {
		comp.Codec = cfg.codec
	}
	comp.Obs = cfg.observer
	return comp
}
