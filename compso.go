// Package compso is the public facade of the COMPSO reproduction: gradient
// compression for distributed training with second-order (K-FAC)
// optimizers, after Sun et al., PPoPP '25.
//
// The heart of the library is the COMPSO compressor — an error-bounded
// filter + stochastic-rounding quantizer + lossless encoder pipeline for
// K-FAC preconditioned gradients — together with the adaptive machinery
// around it: the iteration-wise error-bound controller that follows the
// learning-rate schedule, the layer-wise aggregation driven by a
// performance model, and a simulated multi-GPU cluster for end-to-end
// distributed K-FAC training.
//
// Quick start:
//
//	c := compso.NewCompressor(1234) // COMPSO with default bounds + ANS
//	blob, err := c.Compress(gradient)
//	...
//	restored, err := c.Decompress(blob)
//
// For distributed training, see Train and the examples/ directory; for
// regenerating the paper's tables and figures, see cmd/compso-bench.
package compso

import (
	"io"
	"math/rand/v2"

	"compso/internal/ckpt"
	"compso/internal/cluster"
	"compso/internal/compress"
	internalcompso "compso/internal/compso"
	"compso/internal/encoding"
	"compso/internal/fault"
	"compso/internal/kfac"
	"compso/internal/modelzoo"
	"compso/internal/nn"
	"compso/internal/opt"
	"compso/internal/perfmodel"
	"compso/internal/train"
)

// Compressor lossily compresses float32 gradient vectors. All compressors
// in this package produce self-describing buffers and validate their input
// on decompression.
type Compressor = compress.Compressor

// COMPSO is the paper's compressor with tunable filter/quantizer error
// bounds and a pluggable lossless back-end codec.
type COMPSO = compress.COMPSO

// Codec is a lossless back-end encoder (see Codecs for the Table 2 set).
type Codec = encoding.Codec

// Controller is the iteration-wise adaptive error-bound schedule
// (Algorithm 1 of the paper).
type Controller = internalcompso.Controller

// Strategy is one iteration's compression setting.
type Strategy = internalcompso.Strategy

// Platform describes a simulated cluster interconnect.
type Platform = cluster.Config

// Schedule is a learning-rate schedule (StepLR or SmoothLR).
type Schedule = opt.Schedule

// StepLR decays the learning rate at fixed iterations.
type StepLR = opt.StepLR

// SmoothLR is warmup plus cosine decay.
type SmoothLR = opt.SmoothLR

// TrainConfig configures a distributed training run on the simulated
// cluster.
type TrainConfig = train.Config

// TrainResult is a training run's log.
type TrainResult = train.Result

// KFACConfig holds the K-FAC optimizer hyper-parameters.
type KFACConfig = kfac.Config

// ProxyTask couples a trainable proxy model with its dataset and loss.
type ProxyTask = modelzoo.ProxyTask

// ModelProfile describes one of the paper's evaluation models (layer
// shapes, gradient sizes, compute model).
type ModelProfile = modelzoo.Profile

// LookupTable is the performance model's offline communication-throughput
// table (§4.4).
type LookupTable = perfmodel.LookupTable

// OnlineProfile is the performance model's warmup measurement input.
type OnlineProfile = perfmodel.OnlineProfile

// NewCompressor returns a COMPSO compressor with the paper's default
// configuration (filter+SR at eb 4e-3, ANS back-end) and a deterministic
// stochastic-rounding stream derived from seed.
//
// Deprecated-in-doc: New(WithSeed(seed)) is the preferred constructor; this
// wrapper remains for existing callers.
func NewCompressor(seed int64) *COMPSO { return New(WithSeed(seed)) }

// Stateful is the optional contract for compressors carrying per-stream
// state (error-feedback residuals, PowerSGD's warm-started factors).
// Holders of a long-lived Compressor should type-assert for Stateful and
// Reset between logical streams.
type Stateful = compress.Stateful

// ErrorFeedback is the shared error-feedback wrapper built by
// WithErrorFeedback (or NewErrorFeedback): it carries the compression
// residual across steps and adds it back before each Compress. It
// implements Stateful; type-assert a registry-built Compressor to reach
// ResidualNorm or Reset.
type ErrorFeedback = compress.ErrorFeedback

// PowerSGD is the low-rank compressor family: rank-k P/Q power iteration
// with warm-started queries and ACP-SGD's alternating factor exchange,
// whose aggregation is a ring all-reduce instead of a blob all-gather.
type PowerSGD = compress.PowerSGD

// NewPowerSGD returns a rank-k low-rank compressor with warm-started
// queries and a near-square gradient reshape; equivalent to
// NewCompressorFor("powersgd", WithRank(rank), WithSeed(seed)).
func NewPowerSGD(rank int, seed int64) *PowerSGD { return compress.NewPowerSGD(rank, seed) }

// Families returns the registered compressor family names in canonical
// order ("compso", "qsgd", "sz", "cocktail", "powersgd"), mirroring the
// Codecs/Models/Platforms registry pattern. Build one with
// NewCompressorFor.
func Families() []string { return compress.Families() }

// NewQSGD returns the QSGD baseline compressor (fixed-bit SR quantization
// with Elias-gamma coding).
//
// Deprecated: use NewCompressorFor("qsgd", WithBits(bitWidth),
// WithSeed(seed)). This shim resolves through the registry and panics on
// out-of-range widths (previously the panic surfaced at first Compress).
func NewQSGD(bitWidth int, seed int64) Compressor {
	c, err := NewCompressorFor("qsgd", WithBits(bitWidth), WithSeed(seed))
	if err != nil {
		panic("compso.NewQSGD: " + err.Error())
	}
	return c
}

// NewSZ returns the SZ/cuSZ baseline compressor (Lorenzo prediction,
// RN quantization, Huffman coding) with a range-relative error bound.
//
// Deprecated: use NewCompressorFor("sz", WithRelErrorBound(relErrorBound)).
// A zero bound now selects the registry default (1e-3).
func NewSZ(relErrorBound float64) Compressor {
	c, err := NewCompressorFor("sz", WithRelErrorBound(relErrorBound))
	if err != nil {
		panic("compso.NewSZ: " + err.Error())
	}
	return c
}

// NewCocktailSGD returns the CocktailSGD baseline compressor (top-k
// sparsification plus fixed-bit SR quantization).
//
// Deprecated: use NewCompressorFor("cocktail", WithKeepFraction(keep),
// WithBits(bits), WithSeed(seed)). This shim resolves through the
// registry and panics on out-of-range parameters (previously invalid
// widths surfaced at first Compress).
func NewCocktailSGD(keepFraction float64, bitWidth int, seed int64) Compressor {
	c, err := NewCompressorFor("cocktail",
		WithKeepFraction(keepFraction), WithBits(bitWidth), WithSeed(seed))
	if err != nil {
		panic("compso.NewCocktailSGD: " + err.Error())
	}
	return c
}

// NewController returns the paper's default iteration-wise adaptive
// controller for the given schedule and iteration budget.
func NewController(schedule Schedule, totalIters int) *Controller {
	return internalcompso.DefaultController(schedule, totalIters)
}

// LayerPlan is a per-layer compressor-family assignment for a model
// profile (see PlanFamilies).
type LayerPlan = internalcompso.LayerPlan

// FamilyChoice is one layer's entry in a LayerPlan.
type FamilyChoice = internalcompso.FamilyChoice

// PlanFamilies chooses a compressor family per profile layer: PowerSGD
// rank-k for large 2D layers whose factor exchange clearly beats the
// COMPSO baseline, COMPSO elsewhere. rank ≤ 0 and minParams ≤ 0 select
// the defaults (4 and 1<<16). Use LayerPlan.Compressors with
// TrainConfig.NewLayerCompressor to apply the plan to a training run.
func PlanFamilies(profile ModelProfile, rank, minParams int) LayerPlan {
	return internalcompso.PlanFamilies(profile, rank, minParams)
}

// Sentinel errors for the facade's lookup and decode paths. Match them
// with errors.Is; the wrapped messages carry the offending name and the
// known alternatives.
var (
	// ErrUnknownCodec is wrapped by CodecByName for unregistered encoder
	// names.
	ErrUnknownCodec = encoding.ErrUnknownCodec
	// ErrUnknownModel is wrapped by ModelByName for unregistered
	// evaluation profiles.
	ErrUnknownModel = modelzoo.ErrUnknownModel
	// ErrUnknownPlatform is wrapped by PlatformByName for unregistered
	// platforms.
	ErrUnknownPlatform = cluster.ErrUnknownPlatform
	// ErrCorruptBlob is wrapped by every Decompress implementation on
	// malformed input.
	ErrCorruptBlob = compress.ErrCorrupt
	// ErrUnknownFamily is wrapped by NewCompressorFor for unregistered
	// compressor family names.
	ErrUnknownFamily = compress.ErrUnknownFamily
)

// Codecs returns the Table 2 lossless encoder set (ANS, Bitcomp, Cascaded,
// Deflate, Gdeflate, LZ4, Snappy, Zstd).
func Codecs() []Codec { return encoding.All() }

// CodecByName looks up a lossless encoder by its registry name.
func CodecByName(name string) (Codec, error) { return encoding.ByName(name) }

// Platforms returns the registered platform names ("slingshot10",
// "slingshot11") for PlatformByName, mirroring the Codecs/Models registry
// pattern.
func Platforms() []string { return cluster.Platforms() }

// PlatformByName looks up an evaluation platform by registry name:
// "slingshot10" is the paper's Platform 1 (100 Gbps per node) and
// "slingshot11" its Platform 2 (200 Gbps). Unknown names return an error
// wrapping ErrUnknownPlatform.
func PlatformByName(name string) (Platform, error) { return cluster.PlatformByName(name) }

// Platform1 and Platform2 return the paper's two evaluation clusters
// (Slingshot-10 and Slingshot-11, four A100-class GPUs per node).
//
// Deprecated-in-doc: PlatformByName("slingshot10") is the preferred
// lookup; these aliases remain for existing callers.
func Platform1() Platform { return cluster.Platform1() }

// Platform2 returns the Slingshot-11 platform.
//
// Deprecated-in-doc: prefer PlatformByName("slingshot11").
func Platform2() Platform { return cluster.Platform2() }

// DefaultKFAC returns the K-FAC configuration used across the experiments.
func DefaultKFAC() KFACConfig { return kfac.DefaultConfig() }

// Train runs a distributed (simulated) training job and returns rank 0's
// log.
func Train(cfg TrainConfig) (*TrainResult, error) { return train.Run(cfg) }

// FaultPlan declares a deterministic fault scenario for a training run:
// straggler compute slowdowns, degraded/flaky links, and in-flight payload
// corruption. Pass it via WithFaults (or TrainConfig.Fault directly); the
// same seed and plan always reproduce the same run bit-for-bit.
type FaultPlan = fault.Plan

// Straggler slows one rank's compute by a multiplicative factor over a
// step window (persistent when the window is open-ended).
type Straggler = fault.Straggler

// LinkFault inflates the α/β cost of matching fabric links and optionally
// adds bounded per-message jitter.
type LinkFault = fault.LinkFault

// Corruption flips bits in compressed payloads at a per-delivery rate; the
// training loop recovers via bounded retry then lossless fallback.
type Corruption = fault.Corruption

// FaultGuard configures the straggler-aware collective guard: when the
// measured schedule time diverges from the engine's fault-free prediction
// by more than Ratio for Patience consecutive steps, the autotuner's
// measured state is reset so algorithm picks re-learn under the degraded
// fabric.
type FaultGuard = fault.Guard

// TrainOption mutates a TrainConfig before a TrainWith run.
type TrainOption func(*TrainConfig)

// WithFaults attaches a fault plan to a training run (see FaultPlan). Nil
// restores the fault-free fast path.
func WithFaults(plan *FaultPlan) TrainOption {
	return func(c *TrainConfig) { c.Fault = plan }
}

// WithTrainObserver attaches an observability recorder to the run, exactly
// as setting TrainConfig.Obs.
func WithTrainObserver(o *Observer) TrainOption {
	return func(c *TrainConfig) { c.Obs = o }
}

// WithOverlap toggles the compute/communication overlap scheduler
// (TrainConfig.Overlap): gradients exchange through fused buckets whose
// collectives launch asynchronously, and the K-FAC factor exchange
// pipelines against the owned-layer eigendecompositions. Results are
// bit-identical to the sequential path; only the simulated schedule (and
// therefore CommSeconds) changes. Off by default.
func WithOverlap(on bool) TrainOption {
	return func(c *TrainConfig) { c.Overlap = on }
}

// WithFusionBytes sets the overlap scheduler's tensor-fusion bucket size
// in bytes (TrainConfig.FusionBytes); n <= 0 keeps the 25 MB default.
func WithFusionBytes(n int) TrainOption {
	return func(c *TrainConfig) { c.FusionBytes = n }
}

// CheckpointConfig enables periodic checkpointing and crash recovery for a
// training run (TrainConfig.Checkpoint): every Interval completed steps the
// complete training state — model, optimizer, compressor streams, RNG
// positions, log and wire counters — is captured in a versioned,
// CRC-guarded checkpoint, and a worker loss rolls every rank back to the
// last one and resumes bit-identically to an uninterrupted run.
type CheckpointConfig = train.CheckpointConfig

// WorkerCrash declares a deterministic worker crash in a FaultPlan
// (FaultPlan.Crashes): the rank dies at the configured step and point, the
// survivors detect the loss at their next collective, and the run recovers
// through the checkpoint configuration.
type WorkerCrash = fault.WorkerCrash

// CrashPoint selects where within a training step a WorkerCrash fires.
type CrashPoint = fault.CrashPoint

// The three crash points: at the top of the step, after backward but
// before the gradient exchange, and on entry to one of the step's
// collectives (the hardest detection case).
const (
	CrashAtStepStart   = fault.CrashAtStepStart
	CrashMidStep       = fault.CrashMidStep
	CrashMidCollective = fault.CrashMidCollective
)

// WithCheckpoint enables checkpointing every interval completed steps
// (TrainConfig.Checkpoint.Interval). Checkpoints live in memory unless
// WithCheckpointDir also names a directory; interval <= 0 disables
// checkpointing.
func WithCheckpoint(interval int) TrainOption {
	return func(c *TrainConfig) { c.Checkpoint.Interval = interval }
}

// WithCheckpointDir persists checkpoints as atomically written,
// step-numbered files under dir, so a later process can resume via
// WithResume(LatestCheckpoint(dir)).
func WithCheckpointDir(dir string) TrainOption {
	return func(c *TrainConfig) { c.Checkpoint.Dir = dir }
}

// WithResume starts the run from a checkpoint file saved by an earlier run
// with a matching configuration; "" starts fresh.
func WithResume(path string) TrainOption {
	return func(c *TrainConfig) { c.Checkpoint.Resume = path }
}

// WithMaxRestarts bounds how many worker-loss recoveries a run attempts
// before giving up (default 3).
func WithMaxRestarts(n int) TrainOption {
	return func(c *TrainConfig) { c.Checkpoint.MaxRestarts = n }
}

// LatestCheckpoint returns the path of the newest complete checkpoint in a
// WithCheckpointDir directory, or "" when it holds none — torn in-progress
// writes are never selected.
func LatestCheckpoint(dir string) (string, error) { return ckpt.LatestPath(dir) }

// TrainWith applies options on top of a base TrainConfig and runs it — the
// functional-options companion to Train for fault/observability toggles:
//
//	res, err := compso.TrainWith(cfg, compso.WithFaults(&compso.FaultPlan{
//		Seed:       42,
//		Corruption: compso.Corruption{Rate: 0.02},
//	}))
func TrainWith(cfg TrainConfig, opts ...TrainOption) (*TrainResult, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	return train.Run(cfg)
}

// Models returns the paper's four evaluation model profiles.
func Models() []ModelProfile { return modelzoo.All() }

// ModelByName looks up an evaluation model profile.
func ModelByName(name string) (ModelProfile, error) { return modelzoo.ByName(name) }

// Proxy builders for the trainable stand-ins used by the convergence
// experiments.
var (
	ProxyResNet   = modelzoo.ProxyResNet
	ProxyMaskRCNN = modelzoo.ProxyMaskRCNN
	ProxyBERT     = modelzoo.ProxyBERT
	ProxyGPT      = modelzoo.ProxyGPT
	ProxySQuAD    = modelzoo.ProxySQuAD
)

// BuildLookupTable benchmarks a platform's all-gather offline and returns
// the performance model's throughput table (§4.4).
func BuildLookupTable(p Platform, gpuCounts []int) (*LookupTable, error) {
	return perfmodel.BuildLookupTable(p, gpuCounts)
}

// EndToEndSpeedup projects the iteration speedup from a communication
// speedup s at communication fraction r: ((1−r) + r/s)⁻¹.
func EndToEndSpeedup(r, s float64) float64 { return perfmodel.EndToEnd(r, s) }

// Ratio returns the compression ratio for n float32 values compressed into
// the given buffer.
func Ratio(n int, compressed []byte) float64 { return compress.Ratio(n, compressed) }

// NewRand returns the deterministic RNG used across the library, for
// callers building proxy tasks.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewPCG(uint64(seed), uint64(seed)*0x9e3779b97f4a7c15+1))
}

// TuneResult is the outcome of the automatic error-bound search.
type TuneResult = internalcompso.TuneResult

// TuneBounds implements the paper's future-work bound optimization: it
// finds the largest error bound whose compressed round trip keeps the
// gradient-direction cosine at or above target. lo and hi bracket the
// search.
func TuneBounds(sample []float32, targetCosine, lo, hi float64, seed int64) (TuneResult, error) {
	return internalcompso.TuneBounds(sample, targetCosine, lo, hi, seed)
}

// CosineSimilarity returns the cosine between two gradients — the fidelity
// metric the tuner optimizes.
func CosineSimilarity(a, b []float32) float64 { return internalcompso.CosineSimilarity(a, b) }

// NewErrorFeedback wraps a compressor with the error-feedback mechanism
// (the residual-carrying alternative discussed in §6 of the paper, which
// COMPSO itself avoids to save gradient-sized memory).
func NewErrorFeedback(inner Compressor) *compress.ErrorFeedback {
	return compress.NewErrorFeedback(inner)
}

// SaveModel serializes a model's parameters to w; LoadModel restores them
// into an identically constructed model.
func SaveModel(model *nn.Sequential, w io.Writer) error { return nn.Save(model, w) }

// LoadModel restores parameters saved by SaveModel.
func LoadModel(model *nn.Sequential, r io.Reader) error { return nn.Load(model, r) }

// NewShampoo returns the Shampoo second-order optimizer over the model's
// matrix parameters — an alternative preconditioner whose gradients COMPSO
// compresses identically to K-FAC's.
func NewShampoo(model *nn.Sequential, epsilon float64, updateFreq int) *kfac.Shampoo {
	return kfac.NewShampoo(model, epsilon, updateFreq)
}
