package compso_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"compso"
	"compso/internal/xrand"
)

func gradientSample(n int, seed int64) []float32 {
	src := make([]float32, n)
	xrand.KFACGradient(xrand.NewSeeded(seed), src, 1.0)
	return src
}

func TestFacadeCompressors(t *testing.T) {
	src := gradientSample(50000, 1)
	compressors := []compso.Compressor{
		compso.NewCompressor(1),
		compso.NewQSGD(8, 2),
		compso.NewSZ(4e-3),
		compso.NewCocktailSGD(0.2, 8, 3),
		compso.NewErrorFeedback(compso.NewQSGD(8, 4)),
	}
	for _, c := range compressors {
		blob, err := c.Compress(src)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		out, err := c.Decompress(blob)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(out) != len(src) {
			t.Fatalf("%s: %d values", c.Name(), len(out))
		}
		if r := compso.Ratio(len(src), blob); r < 2 {
			t.Errorf("%s: ratio %.1f < 2", c.Name(), r)
		}
	}
}

func TestFacadeCompressorErrorBound(t *testing.T) {
	src := gradientSample(50000, 5)
	c := compso.NewCompressor(6)
	blob, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if e := math.Abs(float64(out[i] - src[i])); e > c.MaxError()+1e-7 {
			t.Fatalf("error %g exceeds advertised bound %g", e, c.MaxError())
		}
	}
}

func TestFacadeCodecs(t *testing.T) {
	if got := len(compso.Codecs()); got != 8 {
		t.Fatalf("%d codecs, want 8", got)
	}
	if _, err := compso.CodecByName("ANS"); err != nil {
		t.Fatal(err)
	}
	if _, err := compso.CodecByName("nope"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestFacadeModels(t *testing.T) {
	models := compso.Models()
	if len(models) != 4 {
		t.Fatalf("%d models", len(models))
	}
	p, err := compso.ModelByName("BERT-large")
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalParams() < 200e6 {
		t.Fatalf("BERT-large params %d", p.TotalParams())
	}
}

func TestFacadeControllerAndSchedules(t *testing.T) {
	sched := &compso.StepLR{BaseLR: 0.1, Drops: []int{10}, Gamma: 0.1}
	ctrl := compso.NewController(sched, 20)
	early := ctrl.StrategyAt(0)
	late := ctrl.StrategyAt(15)
	if !early.FilterEnabled || late.FilterEnabled {
		t.Fatalf("controller strategies: early %+v late %+v", early, late)
	}
}

func TestFacadeTuner(t *testing.T) {
	sample := gradientSample(50000, 7)
	res, err := compso.TuneBounds(sample, 0.98, 1e-5, 1e-1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cosine < 0.98 || res.Ratio <= 1 {
		t.Fatalf("tuner result %+v", res)
	}
	if got := compso.CosineSimilarity(sample, sample); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self cosine %g", got)
	}
}

func TestFacadePerformanceModel(t *testing.T) {
	lt, err := compso.BuildLookupTable(compso.Platform1(), []int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	if lt.Throughput(1<<20, 64) <= 0 {
		t.Fatal("zero throughput")
	}
	if got := compso.EndToEndSpeedup(0.5, 10); math.Abs(got-1.8181818) > 1e-3 {
		t.Fatalf("EndToEndSpeedup = %g", got)
	}
}

func TestFacadeEndToEndTraining(t *testing.T) {
	sched := &compso.StepLR{BaseLR: 0.03, Drops: []int{30}, Gamma: 0.1}
	res, err := compso.Train(compso.TrainConfig{
		BuildTask: func(rng *rand.Rand) *compso.ProxyTask {
			return compso.ProxyResNet(rng, 9)
		},
		Workers:  4,
		Platform: compso.Platform2(),
		Iters:    40,
		Seed:     10,
		Schedule: sched,
		UseKFAC:  true,
		KFAC:     compso.DefaultKFAC(),
		NewCompressor: func(rank int) compso.Compressor {
			return compso.NewCompressor(int64(rank) + 20)
		},
		Controller:   compso.NewController(sched, 40),
		AggregationM: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= res.Losses[0] {
		t.Fatalf("no learning: %v", res.Losses)
	}
	if res.MeanCR <= 1 {
		t.Fatalf("mean CR %.1f", res.MeanCR)
	}
	if res.Model == nil {
		t.Fatal("trained model missing from result")
	}
}

func TestFacadeRandDeterminism(t *testing.T) {
	a, b := compso.NewRand(1), compso.NewRand(1)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("NewRand not deterministic")
		}
	}
}
