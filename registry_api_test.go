package compso_test

import (
	"bytes"
	"errors"
	"testing"

	"compso"
)

func apiGrad(n int) []float32 {
	g := make([]float32, n)
	rng := compso.NewRand(77)
	for i := range g {
		g[i] = float32(rng.NormFloat64() * 0.01)
	}
	return g
}

// TestNewCompressorForBitIdentity: the public registry entry point must
// match both the deprecated shims and direct construction, family by
// family.
func TestNewCompressorForBitIdentity(t *testing.T) {
	src := apiGrad(900)
	cases := []struct {
		name   string
		family string
		opts   []compso.Option
		legacy func() compso.Compressor
		rounds int
	}{
		{"compso", "compso", []compso.Option{compso.WithSeed(9)},
			func() compso.Compressor { return compso.NewCompressor(9) }, 3},
		{"qsgd", "qsgd", []compso.Option{compso.WithSeed(9), compso.WithBits(8)},
			func() compso.Compressor { return compso.NewQSGD(8, 9) }, 3},
		{"sz", "sz", []compso.Option{compso.WithRelErrorBound(4e-3)},
			func() compso.Compressor { return compso.NewSZ(4e-3) }, 1},
		{"cocktail", "cocktail", []compso.Option{compso.WithSeed(9), compso.WithKeepFraction(0.2), compso.WithBits(8)},
			func() compso.Compressor { return compso.NewCocktailSGD(0.2, 8, 9) }, 3},
		{"powersgd", "powersgd", []compso.Option{compso.WithSeed(9), compso.WithRank(4)},
			func() compso.Compressor { return compso.NewPowerSGD(4, 9) }, 3},
	}
	for _, tc := range cases {
		reg, err := compso.NewCompressorFor(tc.family, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		legacy := tc.legacy()
		for r := 0; r < tc.rounds; r++ {
			rb, err1 := reg.Compress(src)
			lb, err2 := legacy.Compress(src)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s round %d: %v %v", tc.name, r, err1, err2)
			}
			if !bytes.Equal(rb, lb) {
				t.Fatalf("%s round %d: registry blob differs from legacy construction", tc.name, r)
			}
		}
	}
}

// TestNewCompressorForErrorFeedback: WithErrorFeedback composes on any
// family and matches a hand wrap.
func TestNewCompressorForErrorFeedback(t *testing.T) {
	src := apiGrad(600)
	reg, err := compso.NewCompressorFor("powersgd",
		compso.WithSeed(3), compso.WithRank(2), compso.WithErrorFeedback())
	if err != nil {
		t.Fatal(err)
	}
	ef, ok := reg.(*compso.ErrorFeedback)
	if !ok {
		t.Fatalf("WithErrorFeedback built %T", reg)
	}
	want := compso.NewErrorFeedback(compso.NewPowerSGD(2, 3))
	for r := 0; r < 3; r++ {
		rb, err1 := ef.Compress(src)
		wb, err2 := want.Compress(src)
		if err1 != nil || err2 != nil {
			t.Fatalf("round %d: %v %v", r, err1, err2)
		}
		if !bytes.Equal(rb, wb) {
			t.Fatalf("round %d: EF blobs differ", r)
		}
	}
	if ef.ResidualNorm() <= 0 {
		t.Fatal("no residual in flight after lossy rounds")
	}
}

// TestNewCompressorForValidation: family resolution and option conflicts
// fail with the sentinel, not panics.
func TestNewCompressorForValidation(t *testing.T) {
	if _, err := compso.NewCompressorFor("zfp"); !errors.Is(err, compso.ErrUnknownFamily) {
		t.Fatalf("unknown family: %v", err)
	}
	// Conflicting explicit family argument vs WithFamily option.
	if _, err := compso.NewCompressorFor("qsgd", compso.WithFamily("sz")); err == nil {
		t.Fatal("conflicting families accepted")
	}
	// Empty family falls back to WithFamily, then to compso.
	c, err := compso.NewCompressorFor("", compso.WithFamily("powersgd"), compso.WithRank(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*compso.PowerSGD); !ok {
		t.Fatalf("WithFamily fallback built %T", c)
	}
	d, err := compso.NewCompressorFor("")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*compso.COMPSO); !ok {
		t.Fatalf("default family built %T", d)
	}
	if _, err := compso.NewCompressorFor("qsgd", compso.WithBits(40)); err == nil {
		t.Fatal("qsgd bits 40 accepted")
	}
}

// TestFamiliesAndStateful: discovery and the Stateful contract through
// the facade.
func TestFamiliesAndStateful(t *testing.T) {
	fams := compso.Families()
	if len(fams) != 5 || fams[len(fams)-1] != "powersgd" {
		t.Fatalf("Families() = %v", fams)
	}
	c, err := compso.NewCompressorFor("powersgd", compso.WithRank(2), compso.WithErrorFeedback())
	if err != nil {
		t.Fatal(err)
	}
	st, ok := c.(compso.Stateful)
	if !ok {
		t.Fatalf("%T is not Stateful", c)
	}
	if _, err := c.Compress(apiGrad(128)); err != nil {
		t.Fatal(err)
	}
	st.Reset()
	if _, err := c.Compress(apiGrad(64)); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

// TestPlanFamiliesFacade: the per-layer planner is reachable through the
// facade types.
func TestPlanFamiliesFacade(t *testing.T) {
	prof, err := compso.ModelByName("BERT-large")
	if err != nil {
		t.Fatal(err)
	}
	plan := compso.PlanFamilies(prof, 4, 0)
	if plan.LowRankLayers() == 0 {
		t.Fatal("no low-rank layers planned for BERT-large")
	}
}
