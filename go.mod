module compso

go 1.23
